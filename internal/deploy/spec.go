// Package deploy is the live wiring layer behind the public embedding API:
// it assembles the goroutine runtime, the TCP transport, the batched and
// sharded multicoordinated protocol stack (internal/classic), durable
// acceptor storage (internal/wal) and the SMR merge/apply loop
// (internal/smr) from one declarative ClusterSpec — the hand-wiring that
// cmd/mckv, the examples and the experiment drivers used to duplicate.
//
// Two embeddable types come out of it: Replica opens one process's share of
// a deployment (any subset of the spec's coordinator, acceptor and learner
// nodes, each behind its own TCP endpoint), and Client connects over TCP,
// spreads proposals across the shards, load-balances each shard's
// coordinator group, retries with backoff across coordinator failures, and
// correlates apply results back to the submitted commands.
package deploy

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mcpaxos/internal/classic"
	"mcpaxos/internal/faults"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/quorum"
)

// NodeSpec names one process role: a node ID and the TCP address it listens
// on. IDs must be unique across the whole spec and below 1<<23 so command
// IDs can carry the issuing client (see cmdID).
type NodeSpec struct {
	ID   uint32
	Addr string
}

// ClusterSpec declares a full deployment: every node's address, the shard
// count, the coordinator group size per shard, and the tuning knobs of the
// batched command path. The same spec is given to every Replica and Client
// of the deployment; which nodes a process actually runs is chosen at Open.
//
// Ordering is meaningful: coordinator i (in Coords order) serves shard
// i mod Shards, and the first CoordsPerShard coordinators of each residue
// class form that shard's group — the convention of classic.Config.
type ClusterSpec struct {
	// Shards partitions the instance space across that many concurrent
	// sequencer groups (Mencius-style residue classes). 0 or 1 means one.
	Shards int
	// CoordsPerShard is the coordinator group size c per shard: with c ≥ 2
	// a shard's round is multicoordinated and ⌊c/2⌋ coordinator crashes per
	// shard mask without a round change. 0 or 1 keeps single-coordinated
	// rounds.
	CoordsPerShard int

	// Coords, Acceptors and Learners list the protocol nodes. Clients lists
	// the client endpoints: clients listen too, because learner replicas
	// send apply results back over TCP.
	Coords    []NodeSpec
	Acceptors []NodeSpec
	Learners  []NodeSpec
	Clients   []NodeSpec

	// F is the number of acceptor crashes tolerated; 0 means the majority
	// default (len(Acceptors)-1)/2.
	F int

	// WALDir, when set, gives every acceptor a durable write-ahead log under
	// WALDir/acc-<id>; empty keeps votes in process memory (demos, tests).
	WALDir string

	// SnapshotEvery, when > 0, turns on log compaction: each learner cuts a
	// snapshot of its applied state every that-many merged instances and
	// joins the cluster watermark protocol — learners gossip their snapshot
	// frontiers (msg.Done) on the gap-watch cadence, the minimum over those
	// frontiers becomes the compaction watermark, and everything below it is
	// truncated in three layers (learner retained logs, acceptor vote
	// history, reply-cache floors). A learner restarted below the watermark
	// rejoins by installing a peer's snapshot and replaying only the log
	// suffix. 0 disables compaction: everything is retained forever, the
	// pre-snapshot behaviour.
	SnapshotEvery int
	// Retain is the retention floor slack: a learner keeps at least this
	// many log instances below the watermark, so a peer pulling just behind
	// it usually log-pulls instead of escalating to snapshot transfer. 0
	// means SnapshotEvery.
	Retain int
	// SnapshotDir, when set, persists each learner's snapshots under
	// SnapshotDir/learner-<id> (fsync-then-rename, crash artifacts swept on
	// open), so a restarted learner reloads its newest local snapshot and
	// pulls only the suffix. Empty keeps snapshots in process memory: they
	// die with the node, and a restarted learner below the watermark must
	// ship a snapshot from a peer. With compaction enabled, durable
	// snapshots are what keeps acked state recoverable if every learner
	// restarts in overlapping windows — memory-only snapshots trade that
	// away for convenience in tests.
	SnapshotDir string

	// BatchMax is the per-shard ingress batch size at the stamping
	// coordinator (client submissions packed into one consensus instance);
	// 0 means 8. 1 disables batching.
	BatchMax int
	// BatchWait bounds the latency a buffered command waits for its batch to
	// fill; 0 means 2ms.
	BatchWait time.Duration
	// Window bounds each coordinator's pipeline of unlearned instances; 0
	// leaves it unbounded.
	Window int
	// RetryEvery is the base retransmission interval of clients and
	// coordinators; 0 means 25ms. Client retries back off exponentially
	// from it.
	RetryEvery time.Duration
	// RequestTimeout fails a client call that has drawn no reply after this
	// long; 0 means 15s.
	RequestTimeout time.Duration
	// Tick is the duration of one protocol time unit on the wall clock; 0
	// means 1ms.
	Tick time.Duration

	// ReplyCache bounds the per-client reply-replay cache each learner
	// keeps (applied command IDs → results, evicted by per-client
	// watermark), so a retransmitted proposal for an already-applied
	// command re-elicits its reply instead of being silently deduplicated.
	// 0 means 512 entries per client; negative disables replay.
	ReplyCache int
	// CatchupChunk bounds how many instances one learner catch-up response
	// carries (chunked state transfer to a rejoining learner); 0 means 128.
	CatchupChunk int
	// FillAfter is how long a learner lets its merge frontier sit frozen
	// with later instances buffered before nudging the stalled instance's
	// coordinator group to fill the slot (msg.Fill) — the recovery path for
	// a sequence number orphaned by a crashed ingress stamper, and the
	// alignment path for a shard idling while its peers advance. 0 means
	// 4 × RetryEvery.
	FillAfter time.Duration

	// Faults, when set, is installed on the send path of every TCP endpoint
	// this process opens (replica nodes and clients alike): the nemesis
	// harness's loss, duplication, reordering, partitions and link cuts.
	// All endpoints of one process should share one injector so a partition
	// severs every role consistently. nil means a faithful network.
	Faults *faults.Faults

	// reserved holds the listeners ResolveEphemeral bound while picking
	// ports, keyed by resolved address: Open and Dial consume them instead
	// of re-listening, so a resolved port can never be grabbed by another
	// process in between. Copies of the spec share the pool.
	reserved *listenerPool
}

// listenerPool is the shared set of pre-bound listeners of a resolved spec.
type listenerPool struct {
	mu  sync.Mutex
	lns map[string]net.Listener
}

// take removes and returns the reserved listener for addr, if any.
func (p *listenerPool) take(addr string) net.Listener {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ln := p.lns[addr]
	delete(p.lns, addr)
	return ln
}

// listen returns the node's reserved listener or binds its address fresh.
func (s ClusterSpec) listen(addr string) (net.Listener, error) {
	if ln := s.reserved.take(addr); ln != nil {
		return ln, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Spec defaults.
const (
	defaultBatchMax     = 8
	defaultBatchWait    = 2 * time.Millisecond
	defaultRetryEvery   = 25 * time.Millisecond
	defaultTimeout      = 15 * time.Second
	defaultReplyCache   = 512
	defaultCatchupChunk = 128
)

// noopKey marks a fill no-op command: when a learner's merged order stalls
// on an instance no proposal will ever reach — its sequence number died with
// a crashed ingress stamper, or the shard idled while its peers advanced —
// the shard's coordinator group pads the slot with one (the Mencius skip,
// Coordinated Paxos-style: the no-op rides the shard's ordinary
// coordinator-group path, so the skip itself is crash-masked). Learner
// replicas acknowledge and then discard them without touching the state
// machine or the apply order.
const noopKey = "\x00noop"

// clientShift positions the issuing client's node ID in the top bits of a
// command ID (below batch.IDBase): cmdID = client<<clientShift | seq. The
// learner replicas route each apply result back to NodeID(id >> clientShift).
const clientShift = 40

// cmdID stamps a client command ID from the client's node ID and its own
// submission counter.
func cmdID(client msg.NodeID, seq uint64) uint64 {
	return uint64(client)<<clientShift | seq
}

// replyTo recovers the issuing client from a stamped command ID; 0 means the
// command was not client-stamped and gets no reply.
func replyTo(id uint64) msg.NodeID { return msg.NodeID(id >> clientShift & (1<<23 - 1)) }

// LocalSpec builds a loopback spec with ephemeral ports and the repo's
// conventional node IDs (clients 1+i, coordinators 100+i, acceptors 200+i,
// learners 300+i): shards×coordsPerShard coordinators, nAcceptors acceptors,
// nLearners learner replicas and nClients client endpoints. Resolve the
// ephemeral ports with ResolveEphemeral before Open/Dial.
func LocalSpec(shards, coordsPerShard, nAcceptors, nLearners, nClients int) ClusterSpec {
	if shards < 1 {
		shards = 1
	}
	if coordsPerShard < 1 {
		coordsPerShard = 1
	}
	s := ClusterSpec{Shards: shards, CoordsPerShard: coordsPerShard}
	for i := 0; i < shards*coordsPerShard; i++ {
		s.Coords = append(s.Coords, NodeSpec{ID: uint32(100 + i), Addr: "127.0.0.1:0"})
	}
	for i := 0; i < nAcceptors; i++ {
		s.Acceptors = append(s.Acceptors, NodeSpec{ID: uint32(200 + i), Addr: "127.0.0.1:0"})
	}
	for i := 0; i < nLearners; i++ {
		s.Learners = append(s.Learners, NodeSpec{ID: uint32(300 + i), Addr: "127.0.0.1:0"})
	}
	for i := 0; i < nClients; i++ {
		s.Clients = append(s.Clients, NodeSpec{ID: uint32(1 + i), Addr: "127.0.0.1:0"})
	}
	return s
}

// ResolveEphemeral returns a copy of the spec with every port-0 address
// replaced by a concrete free loopback port, so the one resolved spec can be
// shared by every Replica and Client of a single-process deployment. The
// bound listeners stay open — Open and Dial adopt them — so a resolved port
// cannot be lost to another process in the meantime. Multi-machine
// deployments write concrete addresses in the first place.
func (s ClusterSpec) ResolveEphemeral() (ClusterSpec, error) {
	out := s
	out.reserved = &listenerPool{lns: make(map[string]net.Listener)}
	resolve := func(nodes []NodeSpec) ([]NodeSpec, error) {
		rs := append([]NodeSpec(nil), nodes...)
		for i, n := range rs {
			host, port, err := net.SplitHostPort(n.Addr)
			if err != nil || port != "0" {
				continue
			}
			ln, err := net.Listen("tcp", n.Addr)
			if err != nil {
				return nil, fmt.Errorf("deploy: resolve %s: %w", n.Addr, err)
			}
			_, bound, _ := net.SplitHostPort(ln.Addr().String())
			rs[i].Addr = net.JoinHostPort(host, bound)
			out.reserved.lns[rs[i].Addr] = ln
		}
		return rs, nil
	}
	var err error
	for _, f := range []struct {
		dst *[]NodeSpec
		src []NodeSpec
	}{{&out.Coords, s.Coords}, {&out.Acceptors, s.Acceptors}, {&out.Learners, s.Learners}, {&out.Clients, s.Clients}} {
		if *f.dst, err = resolve(f.src); err != nil {
			return ClusterSpec{}, err
		}
	}
	return out, nil
}

// Validate checks the spec (IDs unique and in range, groups complete,
// quorums feasible).
func (s ClusterSpec) Validate() error {
	_, err := s.config()
	return err
}

// normalized tuning accessors (zero means default).

func (s ClusterSpec) batchMax() int {
	if s.BatchMax < 1 {
		return defaultBatchMax
	}
	return s.BatchMax
}

func (s ClusterSpec) tick() time.Duration {
	if s.Tick <= 0 {
		return time.Millisecond
	}
	return s.Tick
}

// ticks converts a wall-clock duration to protocol time units, at least 1.
func (s ClusterSpec) ticks(d time.Duration) int64 {
	if d <= 0 {
		return 1
	}
	t := int64(d / s.tick())
	if t < 1 {
		t = 1
	}
	return t
}

func (s ClusterSpec) retryTicks() int64 {
	d := s.RetryEvery
	if d <= 0 {
		d = defaultRetryEvery
	}
	return s.ticks(d)
}

func (s ClusterSpec) timeoutTicks() int64 {
	d := s.RequestTimeout
	if d <= 0 {
		d = defaultTimeout
	}
	return s.ticks(d)
}

// replyCacheSize normalizes the per-client reply-replay bound: 0 means the
// default, negative disables replay entirely.
func (s ClusterSpec) replyCacheSize() int {
	if s.ReplyCache < 0 {
		return 0
	}
	if s.ReplyCache == 0 {
		return defaultReplyCache
	}
	return s.ReplyCache
}

func (s ClusterSpec) catchupChunk() uint32 {
	if s.CatchupChunk < 1 {
		return defaultCatchupChunk
	}
	return uint32(s.CatchupChunk)
}

// retain normalizes the retention slack below the compaction watermark: 0
// means one snapshot interval, so a peer trailing by less than a full
// interval log-pulls instead of shipping a snapshot.
func (s ClusterSpec) retain() uint64 {
	if s.Retain > 0 {
		return uint64(s.Retain)
	}
	if s.SnapshotEvery > 0 {
		return uint64(s.SnapshotEvery)
	}
	return 0
}

// fillTicks is the learner gap-watch period driving both catch-up resyncs
// and fill nudges (a stall is two consecutive periods at a frozen frontier).
func (s ClusterSpec) fillTicks() int64 {
	d := s.FillAfter
	if d <= 0 {
		return 4 * s.retryTicks()
	}
	return s.ticks(d)
}

func (s ClusterSpec) batchWaitTicks() int64 {
	d := s.BatchWait
	if d < 0 {
		return 0
	}
	if d == 0 {
		d = defaultBatchWait
	}
	return s.ticks(d)
}

// config builds the classic.Config the protocol agents share, validating the
// spec on the way.
func (s ClusterSpec) config() (classic.Config, error) {
	if len(s.Acceptors) == 0 {
		return classic.Config{}, fmt.Errorf("deploy: no acceptors")
	}
	f := s.F
	if f <= 0 {
		f = (len(s.Acceptors) - 1) / 2
	}
	qs, err := quorum.NewAcceptorSystem(len(s.Acceptors), f, 0)
	if err != nil {
		return classic.Config{}, fmt.Errorf("deploy: acceptor quorums: %w", err)
	}
	cfg := classic.Config{
		Quorums:        qs,
		Shards:         s.Shards,
		CoordsPerShard: s.CoordsPerShard,
	}
	seen := make(map[uint32]string)
	add := func(role string, nodes []NodeSpec, dst *[]msg.NodeID) error {
		for _, n := range nodes {
			if n.ID == 0 || n.ID >= 1<<23 {
				return fmt.Errorf("deploy: %s node ID %d out of range [1, 2^23)", role, n.ID)
			}
			if prev, dup := seen[n.ID]; dup {
				return fmt.Errorf("deploy: node ID %d used by both %s and %s", n.ID, prev, role)
			}
			seen[n.ID] = role
			if n.Addr == "" {
				return fmt.Errorf("deploy: %s node %d has no address", role, n.ID)
			}
			if _, port, err := net.SplitHostPort(n.Addr); err == nil && port == "0" {
				// A port-0 address that reached Open/Dial would listen fine
				// but be undialable by every peer (their address book still
				// says port 0): fail loudly instead of hanging silently.
				return fmt.Errorf("deploy: %s node %d address %s has port 0 — call ResolveEphemeral first or use concrete ports",
					role, n.ID, n.Addr)
			}
			if dst != nil {
				*dst = append(*dst, msg.NodeID(n.ID))
			}
		}
		return nil
	}
	if err := add("coordinator", s.Coords, &cfg.Coords); err != nil {
		return classic.Config{}, err
	}
	if err := add("acceptor", s.Acceptors, &cfg.Acceptors); err != nil {
		return classic.Config{}, err
	}
	if err := add("learner", s.Learners, &cfg.Learners); err != nil {
		return classic.Config{}, err
	}
	if err := add("client", s.Clients, nil); err != nil {
		return classic.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return classic.Config{}, err
	}
	return cfg, nil
}

// addrs builds the full node→address book the TCP endpoints dial by.
func (s ClusterSpec) addrs() map[msg.NodeID]string {
	m := make(map[msg.NodeID]string)
	for _, group := range [][]NodeSpec{s.Coords, s.Acceptors, s.Learners, s.Clients} {
		for _, n := range group {
			m[msg.NodeID(n.ID)] = n.Addr
		}
	}
	return m
}
