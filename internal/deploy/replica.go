package deploy

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"mcpaxos/internal/ballot"
	"mcpaxos/internal/batch"
	"mcpaxos/internal/catchup"
	"mcpaxos/internal/classic"
	"mcpaxos/internal/cstruct"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/node"
	"mcpaxos/internal/runtime"
	"mcpaxos/internal/smr"
	"mcpaxos/internal/snapshot"
	"mcpaxos/internal/storage"
	"mcpaxos/internal/transport"
	"mcpaxos/internal/wal"
)

// hosted is one protocol node run by this process: its own mailbox runtime,
// its own TCP endpoint, and (for acceptors) its own WAL.
type hosted struct {
	id    msg.NodeID
	net   *runtime.Network
	agent *runtime.Agent
	tcp   *transport.TCP
	wal   *wal.WAL
}

func (h *hosted) stop() {
	if h.tcp != nil {
		h.tcp.Close()
	}
	h.net.Stop()
	if h.wal != nil {
		h.wal.Close()
	}
}

// learnerState is the SMR side of one hosted learner: the merger restoring
// the total order across shards, the replica state machine, and the merged
// apply order (inner command IDs, batches unpacked).
type learnerState struct {
	mu     sync.Mutex
	rep    *smr.Replica
	merger *smr.Merger
	order  []uint64
	// log retains the raw delivered command of every instance (log[i] is
	// instance i, noop padding and packed batches included): the decided
	// prefix peers pull during learner catch-up.
	log []cstruct.Cmd
	// replay caches recent apply results per client so a retransmitted
	// proposal for an already-applied command re-elicits its reply.
	replay *smr.ReplyCache
	// catchup suppresses reply sends and quiesce broadcasts while the
	// learner is replaying a pulled prefix: the results land in replay (a
	// client probe re-elicits any it still needs) without an O(history)
	// reply storm on rejoin.
	catchup bool
	// replayed counts replies re-elicited from the replay cache.
	replayed uint64

	// Compaction state (Spec.SnapshotEvery > 0). logBase is the instance
	// log[0] holds: the retained prefix is [logBase, logBase+len(log)), and a
	// peer pull below logBase is refused with the floor attached so the
	// requester escalates to snapshot transfer. snaps holds this learner's
	// snapshots (durable under Spec.SnapshotDir, else memory-only);
	// snapFrontier is the frontier of the newest one — the Done frontier this
	// learner gossips. peerDone records each peer's last gossiped frontier,
	// and watermark is the monotone cluster minimum over all of them: the
	// truncation gate.
	logBase      uint64
	snaps        *snapshot.Store
	snapFrontier uint64
	snapSaves    uint64
	peerDone     map[msg.NodeID]uint64
	watermark    uint64
}

// cutSnapshot encodes and saves a snapshot of the applied state at frontier
// fr. Caller holds st.mu.
func (st *learnerState) cutSnapshot(fr uint64) {
	dm, ok := st.rep.Machine().(smr.DurableMachine)
	if !ok {
		return
	}
	ex := st.replay.Export()
	replies := make([]snapshot.Reply, len(ex))
	for i, e := range ex {
		replies[i] = snapshot.Reply{CmdID: e.CmdID, Inst: e.Inst, Result: e.Result}
	}
	blob := snapshot.Encode(snapshot.Snapshot{
		Frontier: fr,
		State:    dm.MarshalState(),
		Order:    append([]uint64(nil), st.order...),
		Replies:  replies,
	})
	if st.snaps.Save(fr, blob) != nil {
		return // save failed: keep gossiping the old frontier, retention stays safe
	}
	st.snapFrontier = fr
	st.snapSaves++
}

// maybeSnapshot cuts a snapshot once the merge frontier is a full interval
// past the last cut. Caller holds st.mu.
func (st *learnerState) maybeSnapshot(every int) {
	if every <= 0 || st.snaps == nil {
		return
	}
	if fr := st.merger.Next(); fr >= st.snapFrontier+uint64(every) {
		st.cutSnapshot(fr)
	}
}

// install replaces the learner's applied state with a decoded snapshot:
// machine state, apply order, dedup floor and reply cache all jump to the
// snapshot's frontier, the retained log resets to empty at that base, and
// the merger skips there so only the suffix replays. It reports false —
// nothing installed — for a snapshot at or behind the current frontier or a
// machine that cannot restore. Caller holds st.mu.
func (st *learnerState) install(s snapshot.Snapshot, blob []byte) bool {
	dm, ok := st.rep.Machine().(smr.DurableMachine)
	if !ok || s.Frontier <= st.merger.Next() {
		return false
	}
	if err := dm.RestoreState(s.State); err != nil {
		return false
	}
	// Seed duplicate suppression with the snapshot's original results: a
	// command applied below the frontier and later restamped (its client
	// retried into a second instance) must re-elicit the result of its
	// first application, not a recomputed one.
	results := make(map[uint64]string, len(s.Replies))
	exported := make([]smr.ExportedReply, len(s.Replies))
	for i, rp := range s.Replies {
		results[rp.CmdID] = rp.Result
		exported[i] = smr.ExportedReply{CmdID: rp.CmdID, Inst: rp.Inst, Result: rp.Result}
	}
	for _, id := range s.Order {
		st.rep.Seed(id, results[id])
	}
	st.order = append([]uint64(nil), s.Order...)
	st.replay.Restore(exported)
	st.log = nil
	st.logBase = s.Frontier
	if s.Frontier > st.snapFrontier {
		st.snapFrontier = s.Frontier
	}
	// SkipTo flushes any buffered suffix through the deliver hook, which
	// appends to the (now empty) log relative to the new base.
	st.merger.SkipTo(s.Frontier)
	if st.snaps != nil {
		// The installed blob becomes this learner's own newest snapshot, so
		// it can serve transfers (and survive restarts, if durable) without
		// waiting for its next cut.
		st.snaps.Save(s.Frontier, blob)
	}
	return true
}

// truncate drops the retained log and reply-cache records below floor.
// Caller holds st.mu.
func (st *learnerState) truncate(floor uint64) {
	if floor <= st.logBase {
		return
	}
	drop := floor - st.logBase
	if drop > uint64(len(st.log)) {
		drop = uint64(len(st.log))
	}
	st.log = append([]cstruct.Cmd(nil), st.log[drop:]...)
	st.logBase += drop
	st.replay.EvictBelow(st.logBase)
}

// Replica runs one process's share of a deployment: any subset of the
// spec's coordinator, acceptor and learner nodes, each hosted on its own
// mailbox goroutine behind its own TCP endpoint. All protocol traffic —
// even between two nodes of the same Replica — crosses the TCP transport,
// so one process per node and all nodes in one process behave identically.
type Replica struct {
	spec ClusterSpec
	cfg  classic.Config

	mu       sync.Mutex
	nodes    map[msg.NodeID]*hosted
	learners map[msg.NodeID]*learnerState
}

// Open starts the given nodes of the spec in this process; with no IDs it
// opens every coordinator, acceptor and learner (a single-process
// deployment). Coordinators that are shard primaries start their shard's
// round immediately; the stack's retransmission makes bring-up robust to
// ordering as long as the acceptors are reachable.
func Open(spec ClusterSpec, ids ...uint32) (*Replica, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		for _, group := range [][]NodeSpec{spec.Coords, spec.Acceptors, spec.Learners} {
			for _, n := range group {
				ids = append(ids, n.ID)
			}
		}
	}
	r := &Replica{
		spec:     spec,
		cfg:      cfg,
		nodes:    make(map[msg.NodeID]*hosted),
		learners: make(map[msg.NodeID]*learnerState),
	}
	for _, raw := range ids {
		if err := r.openNode(msg.NodeID(raw)); err != nil {
			r.Close()
			return nil, err
		}
	}
	// Leadership last, once every locally hosted node is reachable: each
	// shard's primary (coordinator k of shard k) starts the round; acceptors
	// broadcast their promises to the whole group, so one 1a establishes the
	// round at every member.
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, co := range cfg.Coords {
		if i >= cfg.NShards() {
			break
		}
		if h, ok := r.nodes[co]; ok {
			h.agent.Do(func(hd node.Handler) { hd.(*classic.Coordinator).BecomeLeader() })
		}
	}
	return r, nil
}

// roleOf locates id in the spec and returns its role and index.
func (r *Replica) roleOf(id msg.NodeID) (role string, idx int) {
	for i, n := range r.spec.Coords {
		if msg.NodeID(n.ID) == id {
			return "coordinator", i
		}
	}
	for i, n := range r.spec.Acceptors {
		if msg.NodeID(n.ID) == id {
			return "acceptor", i
		}
	}
	for i, n := range r.spec.Learners {
		if msg.NodeID(n.ID) == id {
			return "learner", i
		}
	}
	return "", -1
}

// openNode builds and wires one hosted node.
func (r *Replica) openNode(id msg.NodeID) error {
	role, idx := r.roleOf(id)
	if role == "" {
		return fmt.Errorf("deploy: node %v is not a coordinator, acceptor or learner of the spec", id)
	}
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("deploy: node %v already hosted", id)
	}
	r.mu.Unlock()

	h := &hosted{id: id, net: runtime.NewNetwork()}
	h.net.Tick = r.spec.tick()
	var buildErr error
	build := func(env node.Env) node.Handler {
		switch role {
		case "coordinator":
			c := classic.NewCoordinator(env, r.cfg)
			c.Shard = idx % r.cfg.NShards()
			c.MaxInflight = r.spec.Window
			// Coordinator 2a retransmission backstops lost accepts only; the
			// client already retries lost proposals at the base interval, so
			// the coordinators run much cooler — under a drain burst a hot
			// retransmitter amplifies itself (every duplicate 2a draws
			// re-announcements from the acceptors).
			c.RetryEvery = 4 * r.spec.retryTicks()
			// Server-side ingress: unsequenced client submissions batch and
			// stamp at whichever group member they reach. The fill no-op's ID
			// is the instance itself — below the client bits, so replyTo is 0
			// and no reply is ever owed for a fill.
			c.IngressBatchMax = r.spec.batchMax()
			c.IngressBatchWait = r.spec.batchWaitTicks()
			c.FillCmd = func(inst uint64) cstruct.Cmd {
				return cstruct.Cmd{ID: inst, Key: noopKey, Op: cstruct.OpWrite}
			}
			c.ReqOf = func(cc cstruct.Cmd) (msg.NodeID, uint64, bool) {
				if to := replyTo(cc.ID); to != 0 {
					return to, cc.ID & (1<<clientShift - 1), true
				}
				return 0, 0, false
			}
			return c
		case "acceptor":
			var disk storage.Stable = &storage.Disk{}
			if r.spec.WALDir != "" {
				w, err := wal.Open(filepath.Join(r.spec.WALDir, fmt.Sprintf("acc-%d", uint32(id))), wal.Options{})
				if err != nil {
					buildErr = fmt.Errorf("deploy: acceptor %v wal: %w", id, err)
					return nopHandler{}
				}
				h.wal = w
				disk = w
			}
			return classic.NewAcceptor(env, r.cfg, disk)
		default: // learner
			st := &learnerState{
				rep:      smr.NewReplica(smr.NewKVStore()),
				replay:   smr.NewReplyCache(r.spec.replyCacheSize(), clientShift),
				peerDone: make(map[msg.NodeID]uint64),
			}
			snapDir := ""
			if r.spec.SnapshotDir != "" {
				snapDir = filepath.Join(r.spec.SnapshotDir, fmt.Sprintf("learner-%d", uint32(id)))
			}
			snaps, err := snapshot.OpenStore(snapDir)
			if err != nil {
				buildErr = fmt.Errorf("deploy: learner %v snapshots: %w", id, err)
				return nopHandler{}
			}
			st.snaps = snaps
			every := r.spec.SnapshotEvery
			st.merger = smr.NewMerger(func(inst uint64, cmd cstruct.Cmd) {
				st.log = append(st.log, cmd)
				inner, isBatch := batch.Unpack(cmd)
				if !isBatch {
					inner = []cstruct.Cmd{cmd}
				}
				for _, c := range inner {
					res, dup := "noop", false
					if c.Key != noopKey {
						// Fill skips occupy an instance but never reach the
						// state machine or the apply order. A command seen
						// before — its first stamp decided after all and the
						// client's retry was restamped at a second instance —
						// re-elicits its cached result without re-applying or
						// re-entering the merged order.
						_, dup = st.rep.Result(c.ID)
						res = st.rep.ApplyOnce(c)
						if !dup {
							st.order = append(st.order, c.ID)
						}
					}
					if to := replyTo(c.ID); to != 0 {
						if !dup {
							st.replay.Put(c.ID, inst, res)
						}
						if !st.catchup {
							env.Send(to, msg.Reply{CmdID: c.ID, From: env.ID(), Inst: inst, Result: res})
						}
					}
				}
			})
			l := classic.NewLearner(env, r.cfg, func(inst uint64, cmd cstruct.Cmd) {
				st.mu.Lock()
				st.merger.Add(inst, cmd)
				st.maybeSnapshot(every)
				st.mu.Unlock()
				// Quiesce the owning group's retransmission of this instance
				// (the live counterpart of the simulator's MarkLearned hook).
				shard := r.cfg.ShardOf(inst)
				node.Broadcast(env, r.cfg.ShardCoords(shard), msg.P2b{Inst: inst})
			})
			// A repaired coordinator re-forwards its shard's whole history;
			// the acceptors' re-announcements of already-learned instances
			// land here. Re-acknowledge them so the repaired member's
			// pipeline window drains instead of wedging on decided slots.
			l.OnDuplicate = func(inst uint64) {
				shard := r.cfg.ShardOf(inst)
				node.Broadcast(env, r.cfg.ShardCoords(shard), msg.P2b{Inst: inst})
			}
			st.merger.OnRelease = l.Release
			// A restarted learner reloads its newest durable snapshot before
			// anything else: the merger jumps to the snapshot frontier, so
			// the catch-up fetcher pulls only the log suffix above it.
			if blob, fr, ok := snaps.Latest(); ok {
				if s, err := snapshot.Decode(blob); err == nil && s.Frontier == fr {
					st.mu.Lock()
					st.install(s, blob)
					st.mu.Unlock()
				}
			}
			// Peer learners serve the decided prefix a rejoining learner
			// missed; until the fetcher reaches a peer's frontier, replies
			// for replayed history stay suppressed (st.catchup).
			var peers []msg.NodeID
			for _, p := range r.cfg.Learners {
				if p != id {
					peers = append(peers, p)
				}
			}
			st.catchup = len(peers) > 0
			fetch := catchup.New(env, peers, r.spec.catchupChunk(),
				func() uint64 { st.mu.Lock(); defer st.mu.Unlock(); return st.merger.Next() },
				func() int { st.mu.Lock(); defer st.mu.Unlock(); return st.merger.Buffered() },
				func(inst uint64, cmd cstruct.Cmd) {
					st.mu.Lock()
					st.merger.Add(inst, cmd)
					st.maybeSnapshot(every)
					st.mu.Unlock()
				})
			fetch.RetryTicks = r.spec.retryTicks()
			fetch.WatchTicks = r.spec.fillTicks()
			// Durable-tier fallback: if no peer learner retains the prefix
			// this learner is missing, the acceptors re-announce their votes
			// and the ordinary quorum counting relearns it.
			fetch.Acceptors = r.cfg.Acceptors
			// A frozen frontier that no catch-up pull can move means the
			// stalled instance was never decided — its sequence slot died
			// with a crashed ingress stamper, or its shard idled while the
			// others advanced. Nudge the owning group to fill it.
			fetch.OnStall = func(frontier uint64) {
				shard := r.cfg.ShardOf(frontier)
				node.Broadcast(env, r.cfg.ShardGroup(shard), msg.Fill{Inst: frontier, Learner: id})
			}
			// Snapshot-shipping escalation: when a log pull is refused below
			// a peer's retention floor, the fetcher ships the peer's snapshot
			// and hands the verified blob here; installing it moves the merge
			// frontier so only the log suffix remains to pull.
			fetch.Install = func(frontier uint64, blob []byte) bool {
				s, err := snapshot.Decode(blob)
				if err != nil || s.Frontier != frontier {
					return false
				}
				st.mu.Lock()
				defer st.mu.Unlock()
				return st.install(s, blob)
			}
			if every > 0 {
				// The compaction watermark protocol rides the gap-watch
				// cadence: each tick recomputes the cluster minimum over the
				// gossiped snapshot frontiers, ratchets the local watermark,
				// truncates the retained log down to the retention floor, and
				// re-gossips Done to the peer learners (their minimum) and
				// the acceptors (their vote-history truncation gate). A peer
				// that has never reported holds the minimum at zero, so
				// truncation starts only once every learner has a snapshot.
				retain := r.spec.retain()
				accs := r.cfg.Acceptors
				fetch.OnWatch = func() {
					st.mu.Lock()
					fr := st.snapFrontier
					wm := fr
					for _, p := range peers {
						if pf := st.peerDone[p]; pf < wm {
							wm = pf
						}
					}
					if wm > st.watermark {
						st.watermark = wm
					}
					wm = st.watermark
					if wm > retain {
						st.truncate(wm - retain)
					}
					st.mu.Unlock()
					done := msg.Done{From: env.ID(), Frontier: fr, Watermark: wm}
					for _, p := range peers {
						env.Send(p, done)
					}
					for _, a := range accs {
						env.Send(a, done)
					}
				}
			}
			r.mu.Lock()
			r.learners[id] = st
			r.mu.Unlock()
			return &learnerHandler{env: env, r: r, st: st, l: l, fetch: fetch}
		}
	}
	h.agent = h.net.Spawn(id, build)
	if buildErr != nil {
		h.net.Stop()
		return buildErr
	}
	// Fault injection reaches this node's timers too (clock skew), not just
	// its message sends.
	h.net.SetFaults(r.spec.Faults)
	if role == "learner" {
		// The first catch-up probe goes out once the agent is registered: on
		// a fresh deployment the peers answer "nothing newer" and the
		// learner syncs immediately; after a restart it pulls the prefix.
		h.agent.Do(func(hd node.Handler) { hd.(*learnerHandler).fetch.Start() })
	}
	ln, err := r.spec.listen(r.spec.addrs()[id])
	if err != nil {
		h.net.Stop()
		if h.wal != nil {
			h.wal.Close()
		}
		return err
	}
	tcp := transport.NewTCPOnListener(id, ln, r.spec.addrs(), transport.Codec{Set: cstruct.SingleValueSet{}},
		func(from msg.NodeID, m msg.Message) { h.agent.Inject(from, m) })
	tcp.SetFaults(r.spec.Faults, r.spec.tick())
	h.tcp = tcp
	h.net.SetFallback(func(_, to msg.NodeID, m msg.Message) {
		_ = tcp.Send(to, m) // send failure is message loss, which the model allows
	})
	r.mu.Lock()
	r.nodes[id] = h
	r.mu.Unlock()
	return nil
}

// nopHandler stands in when a node failed to build (the error aborts Open).
type nopHandler struct{}

func (nopHandler) OnMessage(msg.NodeID, msg.Message) {}

// learnerHandler wraps a hosted learner's protocol handler with the deploy
// recovery concerns: replaying cached replies for retransmitted proposals,
// serving peer catch-up pulls from the retained decided prefix, and driving
// the learner's own catch-up fetcher.
type learnerHandler struct {
	env   node.Env
	r     *Replica
	st    *learnerState
	l     *classic.Learner
	fetch *catchup.Fetcher
}

var _ node.Handler = (*learnerHandler)(nil)
var _ node.TimerHandler = (*learnerHandler)(nil)

// OnMessage implements node.Handler.
func (h *learnerHandler) OnMessage(from msg.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case msg.Propose:
		h.onReplayProbe(mm)
	case msg.CatchupReq:
		h.serve(mm)
	case msg.CatchupResp:
		h.fetch.OnResp(mm)
		if h.fetch.Synced() {
			h.st.mu.Lock()
			h.st.catchup = false
			h.st.mu.Unlock()
		}
	case msg.Done:
		h.onDone(mm)
	case msg.SnapReq:
		h.serveSnap(mm)
	case msg.SnapResp:
		h.fetch.OnSnapResp(mm)
	default:
		h.l.OnMessage(from, m)
	}
}

// OnTimer implements node.TimerHandler (the fetcher owns every learner
// timer).
func (h *learnerHandler) OnTimer(tag int) { h.fetch.OnTimer(tag) }

// onReplayProbe answers a client's retransmitted proposal from the replay
// cache: an already-applied command whose replies were all lost can never
// be re-elicited by the consensus path (the learners deduplicate it), so
// the cached result is re-sent instead. Commands not yet applied draw no
// answer here — the ordinary apply-time reply covers them.
func (h *learnerHandler) onReplayProbe(mm msg.Propose) {
	inner, isBatch := batch.Unpack(mm.Cmd)
	if !isBatch {
		inner = []cstruct.Cmd{mm.Cmd}
	}
	var hits []msg.Reply
	h.st.mu.Lock()
	for _, c := range inner {
		if replyTo(c.ID) == 0 {
			continue
		}
		if rec, ok := h.st.replay.Get(c.ID); ok {
			h.st.replayed++
			hits = append(hits, msg.Reply{CmdID: c.ID, From: h.env.ID(), Inst: rec.Inst, Result: rec.Result})
		}
	}
	h.st.mu.Unlock()
	for _, rep := range hits {
		h.env.Send(replyTo(rep.CmdID), rep)
	}
}

// serve answers a peer learner's catch-up request with one chunk of the
// retained decided prefix (bounded by the spec's chunk size and by the
// requester's own bound).
func (h *learnerHandler) serve(mm msg.CatchupReq) {
	max := h.r.spec.catchupChunk()
	if mm.Max > 0 && mm.Max < max {
		max = mm.Max
	}
	h.st.mu.Lock()
	frontier := h.st.merger.Next()
	base := h.st.logBase
	if mm.From < base {
		// The requested prefix was compacted away: refuse with the floor so
		// the requester escalates to snapshot transfer.
		h.st.mu.Unlock()
		h.env.Send(mm.Learner, msg.CatchupResp{
			Learner: h.env.ID(), From: mm.From, Frontier: frontier, Floor: base,
		})
		return
	}
	rel := mm.From - base
	var cmds []cstruct.Cmd
	if rel < uint64(len(h.st.log)) {
		end := rel + uint64(max)
		if end > uint64(len(h.st.log)) {
			end = uint64(len(h.st.log))
		}
		cmds = append([]cstruct.Cmd(nil), h.st.log[rel:end]...)
	}
	h.st.mu.Unlock()
	h.env.Send(mm.Learner, msg.CatchupResp{
		Learner: h.env.ID(), From: mm.From, Frontier: frontier, Cmds: cmds,
	})
}

// onDone records a peer learner's gossiped snapshot frontier. No ratchet: a
// peer that restarted with volatile snapshots honestly reports a lower
// frontier, and holding the cluster minimum down until it re-covers is
// exactly the conservative behaviour the watermark needs (the watermark
// itself never regresses — it only stops advancing).
func (h *learnerHandler) onDone(mm msg.Done) {
	h.st.mu.Lock()
	h.st.peerDone[mm.From] = mm.Frontier
	h.st.mu.Unlock()
}

// snapChunkBytes sizes SnapResp chunks: big enough to move a snapshot in a
// handful of messages, comfortably under the transport's frame cap.
const snapChunkBytes = 48 << 10

// serveSnap streams this learner's newest snapshot to a peer whose log pull
// was refused. No snapshot (or only one at or below the requester's own
// frontier) answers Total 0 — a no-op the requester's retry rotates past.
func (h *learnerHandler) serveSnap(mm msg.SnapReq) {
	blob, fr, ok := h.st.snaps.Latest()
	if !ok || fr <= mm.From {
		h.env.Send(mm.Learner, msg.SnapResp{Learner: h.env.ID()})
		return
	}
	crc := snapshot.Crc(blob)
	total := uint32((len(blob) + snapChunkBytes - 1) / snapChunkBytes)
	for seq := uint32(0); seq < total; seq++ {
		lo := int(seq) * snapChunkBytes
		hi := lo + snapChunkBytes
		if hi > len(blob) {
			hi = len(blob)
		}
		h.env.Send(mm.Learner, msg.SnapResp{
			Learner: h.env.ID(), Frontier: fr, Crc: crc,
			Seq: seq, Total: total, Chunk: blob[lo:hi],
		})
	}
}

// Hosted lists the node IDs this Replica runs (killed nodes excluded).
func (r *Replica) Hosted() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint32, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, uint32(id))
	}
	return out
}

// Kill crash-stops one hosted node: its endpoint closes, its mailbox stops,
// and (for acceptors) its WAL closes as a process death would. Messages to
// it are lost from then on. It reports whether the node was hosted.
func (r *Replica) Kill(id uint32) bool {
	r.mu.Lock()
	h, ok := r.nodes[msg.NodeID(id)]
	delete(r.nodes, msg.NodeID(id))
	delete(r.learners, msg.NodeID(id))
	r.mu.Unlock()
	if !ok {
		return false
	}
	h.stop()
	return true
}

// Restart brings a previously killed (or never-opened) node of the spec
// back up, rebuilding its handler from scratch the way a process restart
// would: a WAL-backed acceptor reloads its votes from stable storage and
// its recovery hook runs; a restarted coordinator repairs its volatile
// round state by probing the acceptors (classic.Coordinator.Repair), so
// abandoned slots decide instead of retransmitting forever; a restarted
// learner rejoins through the catch-up protocol, pulling the decided
// prefix from its peers before resuming live quorum counting.
func (r *Replica) Restart(id uint32) error {
	role, idx := r.roleOf(msg.NodeID(id))
	if err := r.openNode(msg.NodeID(id)); err != nil {
		return err
	}
	r.mu.Lock()
	h := r.nodes[msg.NodeID(id)]
	r.mu.Unlock()
	h.agent.Do(func(hd node.Handler) {
		if rec, ok := hd.(node.Recoverable); ok {
			rec.OnRecover()
		}
	})
	if role == "coordinator" && (r.cfg.Multicoordinated() || idx < r.cfg.NShards()) {
		// Group members rejoin at the live round (zero round changes);
		// single-coordinated shard primaries re-take their round. Standbys
		// of single-coordinated shards stay passive, as before.
		h.agent.Do(func(hd node.Handler) { hd.(*classic.Coordinator).Repair() })
	}
	return nil
}

// Close stops every hosted node.
func (r *Replica) Close() error {
	r.mu.Lock()
	nodes := make([]*hosted, 0, len(r.nodes))
	for _, h := range r.nodes {
		nodes = append(nodes, h)
	}
	r.nodes = make(map[msg.NodeID]*hosted)
	r.learners = make(map[msg.NodeID]*learnerState)
	r.mu.Unlock()
	for _, h := range nodes {
		h.stop()
	}
	return nil
}

// learner returns the SMR state of a hosted learner.
func (r *Replica) learner(id uint32) (*learnerState, error) {
	r.mu.Lock()
	st, ok := r.learners[msg.NodeID(id)]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("deploy: node %d is not a hosted learner", id)
	}
	return st, nil
}

// Applied reports how many distinct commands learner id's replica has
// applied.
func (r *Replica) Applied(id uint32) (int, error) {
	st, err := r.learner(id)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rep.Applied(), nil
}

// Order returns the merged total order applied by learner id so far, as
// command IDs (batches unpacked).
func (r *Replica) Order(id uint32) ([]uint64, error) {
	st, err := r.learner(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]uint64(nil), st.order...), nil
}

// Snapshot renders learner id's state machine.
func (r *Replica) Snapshot(id uint32) (string, error) {
	st, err := r.learner(id)
	if err != nil {
		return "", err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rep.Machine().Snapshot(), nil
}

// Get reads a key from learner id's KV state machine.
func (r *Replica) Get(id uint32, key string) (string, bool, error) {
	st, err := r.learner(id)
	if err != nil {
		return "", false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	kv, ok := st.rep.Machine().(*smr.KVStore)
	if !ok {
		return "", false, fmt.Errorf("deploy: learner %d machine is not a KV store", id)
	}
	v, ok := kv.Get(key)
	return v, ok, nil
}

// Progress reports learner id's merge frontier (the next undelivered
// instance) and how many learned instances a gap is holding back: the
// convergence judgment of the nemesis harness ends a run stalled if any
// surviving learner still buffers behind a gap.
func (r *Replica) Progress(id uint32) (next uint64, buffered int, err error) {
	st, err := r.learner(id)
	if err != nil {
		return 0, 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.merger.Next(), st.merger.Buffered(), nil
}

// Replays sums, across the hosted learners, the replies re-elicited from
// the reply-replay caches (client retransmissions of already-applied
// commands).
func (r *Replica) Replays() uint64 {
	r.mu.Lock()
	sts := make([]*learnerState, 0, len(r.learners))
	for _, st := range r.learners {
		sts = append(sts, st)
	}
	r.mu.Unlock()
	var n uint64
	for _, st := range sts {
		st.mu.Lock()
		n += st.replayed
		st.mu.Unlock()
	}
	return n
}

// CatchupStats sums the catch-up fetcher activity across hosted learners.
func (r *Replica) CatchupStats() catchup.Stats {
	r.mu.Lock()
	var hosts []*hosted
	for _, n := range r.spec.Learners {
		if h, ok := r.nodes[msg.NodeID(n.ID)]; ok {
			hosts = append(hosts, h)
		}
	}
	r.mu.Unlock()
	var s catchup.Stats
	for _, h := range hosts {
		h.agent.Do(func(hd node.Handler) {
			fs := hd.(*learnerHandler).fetch.Stats()
			s.Reqs += fs.Reqs
			s.Chunks += fs.Chunks
			s.Cmds += fs.Cmds
			s.Resyncs += fs.Resyncs
			s.Probes += fs.Probes
			s.Fallbacks += fs.Fallbacks
			s.SnapReqs += fs.SnapReqs
			s.SnapChunks += fs.SnapChunks
			s.SnapInstalls += fs.SnapInstalls
			s.SnapAborts += fs.SnapAborts
		})
	}
	return s
}

// CompactionStats aggregates the snapshot/compaction state across the hosted
// learners: how many snapshots were cut, how far the watermark and the
// truncation base have advanced, the largest retained (resident) log, and
// the snapshot stores' footprint.
type CompactionStats struct {
	// Saves counts snapshots cut (not counting installed transfers).
	Saves uint64
	// Watermark is the highest compaction watermark any learner computed;
	// LogBase the highest truncation base (first retained log instance).
	Watermark, LogBase uint64
	// ResidentLog is the largest retained log (instances) on any learner —
	// the quantity compaction bounds.
	ResidentLog int
	// SnapFiles / SnapBytes sum the snapshot stores' footprint (on disk for
	// durable stores, resident blob for memory-only ones).
	SnapFiles int
	SnapBytes int64
}

// CompactionStats reports the hosted learners' compaction state.
func (r *Replica) CompactionStats() CompactionStats {
	r.mu.Lock()
	sts := make([]*learnerState, 0, len(r.learners))
	for _, st := range r.learners {
		sts = append(sts, st)
	}
	r.mu.Unlock()
	var cs CompactionStats
	for _, st := range sts {
		st.mu.Lock()
		cs.Saves += st.snapSaves
		if st.watermark > cs.Watermark {
			cs.Watermark = st.watermark
		}
		if st.logBase > cs.LogBase {
			cs.LogBase = st.logBase
		}
		if len(st.log) > cs.ResidentLog {
			cs.ResidentLog = len(st.log)
		}
		snaps := st.snaps
		st.mu.Unlock()
		if snaps != nil {
			files, bytes := snaps.DiskStats()
			cs.SnapFiles += files
			cs.SnapBytes += bytes
		}
	}
	return cs
}

// Compaction reports learner id's own compaction state: its newest snapshot
// frontier, the cluster watermark it has computed, and the first log
// instance it still retains.
func (r *Replica) Compaction(id uint32) (frontier, watermark, logBase uint64, err error) {
	st, err := r.learner(id)
	if err != nil {
		return 0, 0, 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapFrontier, st.watermark, st.logBase, nil
}

// AcceptorFloors reports each hosted acceptor's vote-history compaction
// floor (instances below it were truncated on a gossiped watermark).
func (r *Replica) AcceptorFloors() []uint64 {
	var out []uint64
	for _, h := range r.acceptorHosts() {
		h.agent.Do(func(hd node.Handler) {
			out = append(out, hd.(*classic.Acceptor).Floor())
		})
	}
	return out
}

// WALDiskStats sums the hosted acceptors' on-disk WAL footprint: live
// segments, index snapshots, and total bytes. All zeros without a WALDir.
func (r *Replica) WALDiskStats() (segs, snaps int, bytes int64) {
	for _, h := range r.acceptorHosts() {
		if h.wal != nil {
			s, n, b := h.wal.DiskStats()
			segs += s
			snaps += n
			bytes += b
		}
	}
	return
}

// CatchupSynced reports whether learner id's rejoin pull has reached a
// peer's frontier (true for a learner with no peers).
func (r *Replica) CatchupSynced(id uint32) (bool, error) {
	r.mu.Lock()
	h, ok := r.nodes[msg.NodeID(id)]
	r.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("deploy: node %d is not hosted", id)
	}
	synced, err := false, fmt.Errorf("deploy: node %d is not a hosted learner", id)
	h.agent.Do(func(hd node.Handler) {
		if l, ok := hd.(*learnerHandler); ok {
			synced, err = l.fetch.Synced(), nil
		}
	})
	return synced, err
}

// WaitApplied blocks until learner id has applied n distinct commands or the
// timeout elapses.
func (r *Replica) WaitApplied(id uint32, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		got, err := r.Applied(id)
		if err != nil {
			return err
		}
		if got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("deploy: learner %d applied %d/%d after %v", id, got, n, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// NetStats sums the wire traffic counters across every hosted node's TCP
// endpoint (bytes/cmd and codec-time accounting for the live bench).
func (r *Replica) NetStats() transport.TCPStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s transport.TCPStats
	for _, h := range r.nodes {
		if h.tcp != nil {
			s = s.Plus(h.tcp.Stats())
		}
	}
	return s
}

// IngressCounts sums the server-side ingress activity across the hosted,
// live coordinators: sequence slots stamped, client retries restamped after
// losing their slot to a collision, and no-op fills adopted for stalled
// instances.
func (r *Replica) IngressCounts() (stamped, restamped, filled uint64) {
	for _, h := range r.coordHosts() {
		h.agent.Do(func(hd node.Handler) {
			s, re, f := hd.(*classic.Coordinator).IngressCounts()
			stamped += s
			restamped += re
			filled += f
		})
	}
	return
}

// RoundChanges sums the post-establishment round changes across the hosted,
// live coordinators: the currency of the crash-masking claim (a masked
// coordinator crash costs zero).
func (r *Replica) RoundChanges() int {
	n := 0
	for _, h := range r.coordHosts() {
		h.agent.Do(func(hd node.Handler) { n += hd.(*classic.Coordinator).RoundChanges() })
	}
	return n
}

// ShardRounds reports, per shard, the highest round any hosted acceptor is
// serving: comparing snapshots before and after a drain detects round
// changes even when the crashed coordinator can no longer report.
func (r *Replica) ShardRounds() []ballot.Ballot {
	out := make([]ballot.Ballot, r.cfg.NShards())
	for _, h := range r.acceptorHosts() {
		h.agent.Do(func(hd node.Handler) {
			a := hd.(*classic.Acceptor)
			for k := range out {
				out[k] = ballot.Max(out[k], a.ShardRnd(k))
			}
		})
	}
	return out
}

func (r *Replica) coordHosts() []*hosted {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*hosted
	for _, n := range r.spec.Coords {
		if h, ok := r.nodes[msg.NodeID(n.ID)]; ok {
			out = append(out, h)
		}
	}
	return out
}

func (r *Replica) acceptorHosts() []*hosted {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*hosted
	for _, n := range r.spec.Acceptors {
		if h, ok := r.nodes[msg.NodeID(n.ID)]; ok {
			out = append(out, h)
		}
	}
	return out
}
