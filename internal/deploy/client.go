package deploy

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mcpaxos/internal/classic"
	"mcpaxos/internal/cstruct"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/node"
	"mcpaxos/internal/runtime"
	"mcpaxos/internal/smr"
	"mcpaxos/internal/transport"
)

// Call is one in-flight proposal: it resolves when a learner replica
// reports the command's apply result, or when the request times out.
type Call struct {
	// ID is the stamped command ID the reply is correlated by.
	ID   uint64
	done chan struct{}

	// set before done closes, immutable after.
	result string
	err    error
	start  time.Time
	end    time.Time
}

// Done is closed once the call has resolved.
func (c *Call) Done() <-chan struct{} { return c.done }

// Result blocks until the call resolves and returns the apply result.
func (c *Call) Result() (string, error) {
	<-c.done
	return c.result, c.err
}

// Latency reports submission-to-reply wall time; zero until resolved.
func (c *Call) Latency() time.Duration {
	select {
	case <-c.done:
		return c.end.Sub(c.start)
	default:
		return 0
	}
}

// ClientStats counts the client's retry and correlation activity.
type ClientStats struct {
	// Proposed counts submitted commands; Resolved counts replies matched to
	// a call; Failed counts calls that timed out.
	Proposed, Resolved, Failed uint64
	// Retries counts proposal retransmissions (dropped connections, slow or
	// crashed coordinators); Rotations counts retries that failed over to a
	// non-primary member of the shard's coordinator group.
	Retries, Rotations uint64
	// DupReplies counts replies dropped because another learner replica
	// answered first — the duplicate-response suppression at work.
	DupReplies uint64
	// Noops is retained for printer compatibility; the client no longer
	// injects alignment no-ops (idle shards are filled server-side).
	Noops uint64
	// Abandoned is retained for printer compatibility; sequence-slot
	// liveness moved server-side with the ingress stamp, so a timed-out call
	// simply stops retrying.
	Abandoned uint64
	// ReplayProbes counts retry rounds that also broadcast the proposal to
	// the learners, soliciting cached replies for already-applied commands.
	ReplayProbes uint64
}

// Client is the embeddable client of a deployment: it connects over TCP and
// submits commands *unsequenced*, tagged (client, request counter) — the
// shard's coordinator group assigns the sequence number at ingress, so any
// number of Clients (and any number of goroutines per Client) share one
// deployment without coordinating. Submissions spread round-robin across the
// shards; each proposal initially targets the shard's primary stamper and
// retries rotate through the group with exponential backoff, so a crashed or
// unreachable coordinator is masked. The idempotency tag makes retries safe:
// a re-received request maps to its already-stamped slot instead of a fresh
// one. Each command's Call resolves when the first learner replica reports
// its apply result.
type Client struct {
	id     msg.NodeID
	net    *runtime.Network
	tcp    *transport.TCP
	agent  *runtime.Agent
	h      *clientHandler
	closed atomic.Bool
}

// Dial opens the client endpoint declared as spec client id and connects it
// to the deployment.
func Dial(spec ClusterSpec, id uint32) (*Client, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range spec.Clients {
		if n.ID == id {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("deploy: %d is not a client of the spec", id)
	}
	c := &Client{id: msg.NodeID(id), net: runtime.NewNetwork()}
	c.net.Tick = spec.tick()
	c.agent = c.net.Spawn(c.id, func(env node.Env) node.Handler {
		c.h = newClientHandler(env, cfg, spec)
		return c.h
	})
	ln, err := spec.listen(spec.addrs()[c.id])
	if err != nil {
		c.net.Stop()
		return nil, err
	}
	tcp := transport.NewTCPOnListener(c.id, ln, spec.addrs(), transport.Codec{Set: cstruct.SingleValueSet{}},
		func(from msg.NodeID, m msg.Message) { c.agent.Inject(from, m) })
	tcp.SetFaults(spec.Faults, spec.tick())
	c.tcp = tcp
	c.net.SetFaults(spec.Faults) // clock skew reaches the client's timers too
	c.net.SetFallback(func(_, to msg.NodeID, m msg.Message) { _ = tcp.Send(to, m) })
	return c, nil
}

// Propose submits one command and returns its in-flight Call. Safe for
// concurrent use: any number of goroutines may propose at once — the ID
// stamp is atomic and submission travels through the client's mailbox. A
// zero cmd.ID is stamped with the client's identity and submission counter —
// required for reply correlation and retry idempotency; callers supplying
// their own IDs must use the same scheme (see cmdID) or forgo replies.
func (c *Client) Propose(cmd cstruct.Cmd) *Call {
	if cmd.ID == 0 {
		cmd.ID = cmdID(c.id, c.h.seq.Add(1)-1)
	}
	call := &Call{ID: cmd.ID, done: make(chan struct{}), start: time.Now()}
	if c.closed.Load() {
		// The mailbox is (or is about to be) gone: resolve the call now
		// instead of handing back one that can never complete.
		call.err, call.end = fmt.Errorf("deploy: client closed"), time.Now()
		close(call.done)
		return call
	}
	c.agent.Inject(c.id, proposeMsg{Propose: msg.Propose{Cmd: cmd}, call: call})
	return call
}

// Set proposes a KV write and returns its Call.
func (c *Client) Set(key, value string) *Call {
	return c.Propose(smr.SetCmd(0, key, value))
}

// Del proposes a KV delete and returns its Call.
func (c *Client) Del(key string) *Call {
	return c.Propose(smr.DelCmd(0, key))
}

// Get proposes a KV read through consensus and returns its Call: the result
// resolves to "=<value>" or smr.KVMissing, serialized against the writes —
// the linearizable read path the nemesis history checker exercises.
func (c *Client) Get(key string) *Call {
	return c.Propose(smr.GetCmd(0, key))
}

// Flush is retained for API compatibility: submissions are forwarded as they
// arrive and batching happens server-side at the ingress stamper, so there
// is no client-side stream to flush.
func (c *Client) Flush() {}

// Wait blocks until every given call resolves or the timeout elapses; it
// returns the first call error, if any.
func (c *Client) Wait(calls []*Call, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var firstErr error
	for _, call := range calls {
		select {
		case <-call.Done():
			if _, err := call.Result(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-deadline.C:
			return fmt.Errorf("deploy: %v timeout waiting for call %d", timeout, call.ID)
		}
	}
	return firstErr
}

// Stats snapshots the client's retry/correlation counters.
func (c *Client) Stats() ClientStats {
	var s ClientStats
	c.agent.Do(func(node.Handler) { s = c.h.stats })
	return s
}

// NetStats snapshots the client endpoint's wire traffic counters.
func (c *Client) NetStats() transport.TCPStats { return c.tcp.Stats() }

// Close disconnects the client. Unresolved calls fail, and later Propose
// calls return already-failed Calls.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.agent.Do(func(node.Handler) { c.h.failAll(fmt.Errorf("deploy: client closed")) })
	c.tcp.Close()
	c.net.Stop()
	return nil
}

// Client timer tags.
const tagClientRetry = 1

// proposeMsg carries one submission through the client's mailbox. It wraps
// the real wire message — Type and Instance report the embedded proposal's —
// but never crosses the wire itself: the handler fills in the ingress tag
// and routes it.
type proposeMsg struct {
	msg.Propose
	call *Call
}

// pendingCmd is one unresolved proposal's retry state. The client retries
// the identical tagged submission; the ingress idempotency key (client, req)
// maps every re-receipt to the already-stamped slot, so retrying is safe no
// matter how many group members see it.
type pendingCmd struct {
	shard    int
	req      uint64
	cmd      cstruct.Cmd
	attempts int
	next     int64 // env time of the next retry
	deadline int64 // env time at which the call fails
}

// clientHandler is the protocol-facing half of the Client. It runs on the
// client agent's mailbox goroutine; the Client's exported methods reach it
// through Agent.Do, so it needs no locking.
type clientHandler struct {
	env  node.Env
	cfg  classic.Config
	spec ClusterSpec

	// seq is the command-ID stamp counter; atomic because Propose stamps on
	// the caller's goroutine — any number of them concurrently.
	seq atomic.Uint64

	calls map[uint64]*Call       // command ID → call
	pend  map[uint64]*pendingCmd // command ID → retry state
	rr    uint64                 // shard rotation cursor

	retryEvery   int64
	timeoutTicks int64
	retryArmed   bool
	stats        ClientStats
}

var _ node.Handler = (*clientHandler)(nil)
var _ node.TimerHandler = (*clientHandler)(nil)

func newClientHandler(env node.Env, cfg classic.Config, spec ClusterSpec) *clientHandler {
	return &clientHandler{
		env: env, cfg: cfg, spec: spec,
		calls:        make(map[uint64]*Call),
		pend:         make(map[uint64]*pendingCmd),
		retryEvery:   spec.retryTicks(),
		timeoutTicks: spec.timeoutTicks(),
	}
}

// propose stamps, registers and routes one command from the mailbox
// goroutine (test convenience; the Client submits via proposeMsg).
func (h *clientHandler) propose(cmd cstruct.Cmd) *Call {
	if cmd.ID == 0 {
		cmd.ID = cmdID(h.env.ID(), h.seq.Add(1)-1)
	}
	call := &Call{ID: cmd.ID, done: make(chan struct{}), start: time.Now()}
	h.proposeCall(cmd, call)
	return call
}

// proposeCall registers one stamped command and sends its initial tagged,
// unsequenced proposal.
func (h *clientHandler) proposeCall(cmd cstruct.Cmd, call *Call) {
	if cmd.Key == noopKey {
		// The skip key is the deploy layer's own vocabulary: a user command
		// carrying it would be silently discarded at apply time.
		call.err, call.end = fmt.Errorf("deploy: key %q is reserved for fill no-ops", noopKey), time.Now()
		close(call.done)
		return
	}
	if _, dup := h.calls[cmd.ID]; dup {
		// A duplicate ID cannot be correlated independently: fail the new
		// call rather than strand it (stamped IDs never collide; only
		// caller-supplied IDs can).
		call.err, call.end = fmt.Errorf("deploy: duplicate command ID %d in flight", cmd.ID), time.Now()
		close(call.done)
		return
	}
	h.calls[cmd.ID] = call
	h.stats.Proposed++
	shard := int(h.rr % uint64(h.cfg.NShards()))
	h.rr++
	p := &pendingCmd{
		shard: shard,
		// The request counter is the sub-client part of the command ID: for
		// stamped IDs that is exactly the submission counter, unique per
		// client, making (client, req) a sound ingress idempotency key.
		req: cmd.ID & (1<<clientShift - 1),
		cmd: cmd,
		// The first retry waits twice the base interval: under a burst the
		// end-to-end reply time legitimately exceeds one interval, and a
		// premature retransmission only adds to the load it is waiting out.
		next:     h.env.Now() + 2*h.retryEvery,
		deadline: h.env.Now() + h.timeoutTicks,
	}
	h.pend[cmd.ID] = p
	h.send(p)
	h.armRetry()
}

// send transmits one tagged, unsequenced proposal to its current targets.
func (h *clientHandler) send(p *pendingCmd) {
	node.Broadcast(h.env, h.targets(p.shard, p.attempts),
		msg.Propose{Cmd: p.cmd, Client: h.env.ID(), Req: p.req})
}

// targets picks where a proposal goes. Multicoordinated shards funnel the
// initial send to the group's first member — the shard's primary stamper:
// one stamper at a time keeps concurrent submissions from colliding over
// sequence slots, and stamping is cheap enough not to need the Section 4.1
// load-balance lever. Retries rotate through the group one member at a
// time, so a dead primary is failed over without fanning a retry burst into
// multiple simultaneous stampers. Single-coordinated shards always target
// the primary plus its standbys (only the leader assigns; duplicates dedup
// by command ID).
func (h *clientHandler) targets(shard, attempt int) []msg.NodeID {
	if !h.cfg.Multicoordinated() {
		return h.cfg.ShardCoords(shard)
	}
	group := h.cfg.ShardGroup(shard)
	i := attempt % len(group)
	if i != 0 {
		h.stats.Rotations++
	}
	return group[i : i+1]
}

// OnMessage implements node.Handler: submissions are routed, replies resolve
// calls; everything else is ignored.
func (h *clientHandler) OnMessage(_ msg.NodeID, m msg.Message) {
	if pm, ok := m.(proposeMsg); ok {
		h.proposeCall(pm.Cmd, pm.call)
		return
	}
	mm, ok := m.(msg.Reply)
	if !ok {
		return
	}
	call, ok := h.calls[mm.CmdID]
	if !ok {
		h.stats.DupReplies++
		return
	}
	delete(h.calls, mm.CmdID)
	delete(h.pend, mm.CmdID)
	h.stats.Resolved++
	call.result, call.end = mm.Result, time.Now()
	close(call.done)
}

// OnTimer implements node.TimerHandler: due proposals are retransmitted with
// exponential backoff; proposals past their deadline fail their calls and
// stop — sequence-slot liveness is the ingress stamper's problem now, so an
// abandoned command leaves no hole for the learners to stall on.
func (h *clientHandler) OnTimer(tag int) {
	if tag != tagClientRetry {
		return
	}
	h.retryArmed = false
	now := h.env.Now()
	// Deterministic retry order (map iteration is not).
	ids := make([]uint64, 0, len(h.pend))
	for id := range h.pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := h.pend[id]
		if now >= p.deadline {
			h.failCmd(id, fmt.Errorf("deploy: no reply for command %d after %d attempts", id, p.attempts+1))
			continue
		}
		if now < p.next {
			continue
		}
		p.attempts++
		h.stats.Retries++
		backoff := h.retryEvery << uint(min(p.attempts, 5))
		p.next = now + backoff
		h.send(p)
		if p.attempts >= 2 {
			// The command may already be applied with every reply frame
			// lost — the ingress dedups it and the consensus path never
			// replies again. Probe the learners' replay caches too.
			node.Broadcast(h.env, h.cfg.Learners,
				msg.Propose{Cmd: p.cmd, Client: h.env.ID(), Req: p.req})
			h.stats.ReplayProbes++
		}
	}
	h.armRetry()
}

// failCmd resolves one command's call with err and stops retrying it.
func (h *clientHandler) failCmd(id uint64, err error) {
	delete(h.pend, id)
	call, ok := h.calls[id]
	if !ok {
		return
	}
	delete(h.calls, id)
	h.stats.Failed++
	call.err, call.end = err, time.Now()
	close(call.done)
}

// failAll fails every in-flight call (client shutdown).
func (h *clientHandler) failAll(err error) {
	for id, call := range h.calls {
		delete(h.calls, id)
		delete(h.pend, id)
		h.stats.Failed++
		call.err, call.end = err, time.Now()
		close(call.done)
	}
	for id := range h.pend {
		delete(h.pend, id)
	}
}

func (h *clientHandler) armRetry() {
	if h.retryArmed || len(h.pend) == 0 {
		return
	}
	h.retryArmed = true
	h.env.SetTimer(h.retryEvery, tagClientRetry)
}
