package deploy

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mcpaxos/internal/batch"
	"mcpaxos/internal/classic"
	"mcpaxos/internal/cstruct"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/node"
	"mcpaxos/internal/runtime"
	"mcpaxos/internal/smr"
	"mcpaxos/internal/transport"
)

// Call is one in-flight proposal: it resolves when a learner replica
// reports the command's apply result, or when the request times out.
type Call struct {
	// ID is the stamped command ID the reply is correlated by.
	ID   uint64
	done chan struct{}

	// set before done closes, immutable after.
	result string
	err    error
	start  time.Time
	end    time.Time
}

// Done is closed once the call has resolved.
func (c *Call) Done() <-chan struct{} { return c.done }

// Result blocks until the call resolves and returns the apply result.
func (c *Call) Result() (string, error) {
	<-c.done
	return c.result, c.err
}

// Latency reports submission-to-reply wall time; zero until resolved.
func (c *Call) Latency() time.Duration {
	select {
	case <-c.done:
		return c.end.Sub(c.start)
	default:
		return 0
	}
}

// ClientStats counts the client's retry and correlation activity.
type ClientStats struct {
	// Proposed counts submitted commands; Resolved counts replies matched to
	// a call; Failed counts calls that timed out.
	Proposed, Resolved, Failed uint64
	// Retries counts batch retransmissions (dropped connections, slow or
	// crashed coordinators); Rotations counts quorum-window advances of the
	// initial-send load balancer.
	Retries, Rotations uint64
	// DupReplies counts replies dropped because another learner replica
	// answered first — the duplicate-response suppression at work.
	DupReplies uint64
	// Noops counts shard-alignment skip commands the client injected to keep
	// the merged order gap-free under skewed flush counts.
	Noops uint64
	// Abandoned counts batches whose calls failed at the deadline but whose
	// proposals kept retransmitting (see abandon).
	Abandoned uint64
	// ReplayProbes counts retry rounds that also broadcast the proposal to
	// the learners, soliciting cached replies for already-applied commands.
	ReplayProbes uint64
}

// Client is the embeddable client of a deployment: it connects over TCP,
// spreads proposals round-robin across the shards (batching each shard's
// stream independently), load-balances each shard's coordinator group by
// rotating the quorum-sized window the initial send targets, retries with
// exponential backoff — falling back to the whole group, so a crashed or
// unreachable coordinator is masked — and resolves each command's Call when
// the first learner replica reports its apply result.
type Client struct {
	id     msg.NodeID
	net    *runtime.Network
	tcp    *transport.TCP
	agent  *runtime.Agent
	h      *clientHandler
	closed atomic.Bool
}

// Dial opens the client endpoint declared as spec client id and connects it
// to the deployment.
func Dial(spec ClusterSpec, id uint32) (*Client, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range spec.Clients {
		if n.ID == id {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("deploy: %d is not a client of the spec", id)
	}
	c := &Client{id: msg.NodeID(id), net: runtime.NewNetwork()}
	c.net.Tick = spec.tick()
	c.agent = c.net.Spawn(c.id, func(env node.Env) node.Handler {
		c.h = newClientHandler(env, cfg, spec)
		return c.h
	})
	ln, err := spec.listen(spec.addrs()[c.id])
	if err != nil {
		c.net.Stop()
		return nil, err
	}
	tcp := transport.NewTCPOnListener(c.id, ln, spec.addrs(), transport.Codec{Set: cstruct.SingleValueSet{}},
		func(from msg.NodeID, m msg.Message) { c.agent.Inject(from, m) })
	tcp.SetFaults(spec.Faults, spec.tick())
	c.tcp = tcp
	c.net.SetFaults(spec.Faults) // clock skew reaches the client's timers too
	c.net.SetFallback(func(_, to msg.NodeID, m msg.Message) { _ = tcp.Send(to, m) })
	return c, nil
}

// Propose submits one command and returns its in-flight Call. A zero cmd.ID
// is stamped with the client's identity and submission counter — required
// for reply correlation; callers supplying their own IDs must use the same
// scheme (see cmdID) or forgo replies. Submission is asynchronous: the
// command travels through the client's mailbox, so a burst of proposals
// never blocks behind the protocol traffic it generates.
func (c *Client) Propose(cmd cstruct.Cmd) *Call {
	if cmd.ID == 0 {
		cmd.ID = cmdID(c.id, c.h.seq.Add(1)-1)
	}
	call := &Call{ID: cmd.ID, done: make(chan struct{}), start: time.Now()}
	if c.closed.Load() {
		// The mailbox is (or is about to be) gone: resolve the call now
		// instead of handing back one that can never complete.
		call.err, call.end = fmt.Errorf("deploy: client closed"), time.Now()
		close(call.done)
		return call
	}
	c.agent.Inject(c.id, proposeMsg{cmd: cmd, call: call})
	return call
}

// Set proposes a KV write and returns its Call.
func (c *Client) Set(key, value string) *Call {
	return c.Propose(smr.SetCmd(0, key, value))
}

// Del proposes a KV delete and returns its Call.
func (c *Client) Del(key string) *Call {
	return c.Propose(smr.DelCmd(0, key))
}

// Get proposes a KV read through consensus and returns its Call: the result
// resolves to "=<value>" or smr.KVMissing, serialized against the writes —
// the linearizable read path the nemesis history checker exercises.
func (c *Client) Get(key string) *Call {
	return c.Propose(smr.GetCmd(0, key))
}

// Flush submits every partially filled batch immediately instead of waiting
// for size or BatchWait, then aligns the shard streams (no-op padding) so
// the merged order cannot stall on a never-proposed instance.
func (c *Client) Flush() {
	c.agent.Do(func(node.Handler) {
		c.h.router.FlushAll()
		c.h.alignShards()
	})
}

// Wait flushes and blocks until every given call resolves or the timeout
// elapses; it returns the first call error, if any.
func (c *Client) Wait(calls []*Call, timeout time.Duration) error {
	c.Flush()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var firstErr error
	for _, call := range calls {
		select {
		case <-call.Done():
			if _, err := call.Result(); err != nil && firstErr == nil {
				firstErr = err
			}
		case <-deadline.C:
			return fmt.Errorf("deploy: %v timeout waiting for call %d", timeout, call.ID)
		}
	}
	return firstErr
}

// Stats snapshots the client's retry/correlation counters.
func (c *Client) Stats() ClientStats {
	var s ClientStats
	c.agent.Do(func(node.Handler) { s = c.h.stats })
	return s
}

// NetStats snapshots the client endpoint's wire traffic counters.
func (c *Client) NetStats() transport.TCPStats { return c.tcp.Stats() }

// Close disconnects the client. Unresolved calls fail, and later Propose
// calls return already-failed Calls.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.agent.Do(func(node.Handler) { c.h.failAll(fmt.Errorf("deploy: client closed")) })
	c.tcp.Close()
	c.net.Stop()
	return nil
}

// Client timer tags.
const (
	tagClientRetry = 1
	tagClientFlush = 2
)

// proposeMsg carries one submission through the client's mailbox (it never
// crosses the wire).
type proposeMsg struct {
	cmd  cstruct.Cmd
	call *Call
}

// Type implements msg.Message.
func (proposeMsg) Type() msg.Type { return msg.TUnknown }

// Instance implements msg.Message.
func (proposeMsg) Instance() uint64 { return 0 }

// pendingBatch is one flushed batch (or lone command) awaiting replies for
// its constituents; retries resend the identical command under the identical
// per-shard sequence number, so every coordinator group member keeps the
// same instance placement.
type pendingBatch struct {
	shard    int
	seq      uint64
	cmd      cstruct.Cmd
	waiting  int
	attempts int
	next     int64 // env time of the next retry
	deadline int64 // env time at which the batch's calls fail
	// abandoned marks a batch whose calls already failed at the deadline but
	// whose proposal must keep retransmitting: its sequence number owns an
	// instance in the shard's stream, and a slot no proposal ever fills
	// again would wedge the merged order for every learner.
	abandoned bool
}

// clientHandler is the protocol-facing half of the Client. It runs on the
// client agent's mailbox goroutine; the Client's exported methods reach it
// through Agent.Do, so it needs no locking.
type clientHandler struct {
	env  node.Env
	cfg  classic.Config
	spec ClusterSpec

	router *batch.Router
	// seq is the command-ID stamp counter. It is atomic because Propose
	// stamps on the caller's goroutine while alignShards stamps no-ops on
	// the mailbox goroutine.
	seq atomic.Uint64

	calls   map[uint64]*Call         // inner command ID → call
	batchOf map[uint64]uint64        // inner command ID → flushed cmd ID
	pend    map[uint64]*pendingBatch // flushed cmd ID → retry state
	rr      []int                    // per-shard rotation cursor of the initial-send window

	retryEvery   int64
	timeoutTicks int64
	retryArmed   bool
	flushArmed   bool
	stats        ClientStats
}

var _ node.Handler = (*clientHandler)(nil)
var _ node.TimerHandler = (*clientHandler)(nil)

func newClientHandler(env node.Env, cfg classic.Config, spec ClusterSpec) *clientHandler {
	h := &clientHandler{
		env: env, cfg: cfg, spec: spec,
		calls:        make(map[uint64]*Call),
		batchOf:      make(map[uint64]uint64),
		pend:         make(map[uint64]*pendingBatch),
		rr:           make([]int, cfg.NShards()),
		retryEvery:   spec.retryTicks(),
		timeoutTicks: spec.timeoutTicks(),
	}
	h.router = batch.NewRouter(cfg.NShards(), spec.batchMax(), spec.batchWaitTicks(), env.Now, h.submit)
	return h
}

// propose stamps, registers and routes one command from the mailbox
// goroutine (test convenience; the Client submits via proposeMsg).
func (h *clientHandler) propose(cmd cstruct.Cmd) *Call {
	if cmd.ID == 0 {
		cmd.ID = cmdID(h.env.ID(), h.seq.Add(1)-1)
	}
	call := &Call{ID: cmd.ID, done: make(chan struct{}), start: time.Now()}
	h.proposeCall(cmd, call)
	return call
}

// proposeCall registers and routes one stamped command.
func (h *clientHandler) proposeCall(cmd cstruct.Cmd, call *Call) {
	if cmd.Key == noopKey {
		// The skip key is the deploy layer's own vocabulary: a user command
		// carrying it would be silently discarded at apply time.
		call.err, call.end = fmt.Errorf("deploy: key %q is reserved for shard-alignment no-ops", noopKey), time.Now()
		close(call.done)
		return
	}
	if _, dup := h.calls[cmd.ID]; dup {
		// A duplicate ID cannot be correlated independently: fail the new
		// call rather than strand it (stamped IDs never collide; only
		// caller-supplied IDs can).
		call.err, call.end = fmt.Errorf("deploy: duplicate command ID %d in flight", cmd.ID), time.Now()
		close(call.done)
		return
	}
	h.calls[cmd.ID] = call
	h.stats.Proposed++
	h.router.Route(cmd)
	if wait := h.spec.batchWaitTicks(); wait > 0 && h.router.Pending() > 0 && !h.flushArmed {
		h.flushArmed = true
		h.env.SetTimer(wait, tagClientFlush)
	}
}

// submit receives each flushed batch from the router and sends it to the
// shard's initial-target window.
func (h *clientHandler) submit(shard int, seq uint64, cmd cstruct.Cmd) {
	// Keys-only unpack: retry bookkeeping needs the constituent IDs, not
	// copies of their payloads.
	inner, isBatch := batch.UnpackMeta(cmd)
	if !isBatch {
		inner = []cstruct.Cmd{cmd}
	}
	b := &pendingBatch{
		shard: shard, seq: seq, cmd: cmd,
		// The first retry waits twice the base interval: under a burst the
		// end-to-end reply time legitimately exceeds one interval, and a
		// premature full-group rebroadcast only adds to the load it is
		// waiting out.
		next:     h.env.Now() + 2*h.retryEvery,
		deadline: h.env.Now() + h.timeoutTicks,
	}
	for _, c := range inner {
		if _, tracked := h.calls[c.ID]; tracked {
			h.batchOf[c.ID] = cmd.ID
			b.waiting++
		}
	}
	h.pend[cmd.ID] = b
	node.Broadcast(h.env, h.targets(shard, 0), msg.Propose{Cmd: cmd, Seq: seq, HasSeq: true})
	h.armRetry()
}

// targets picks where a batch goes. The initial send of a multicoordinated
// shard load-balances: a quorum-sized window of the group, rotated per
// flush, is enough for acceptors to gather ⌊c/2⌋+1 matching 2as while
// spreading forwarding work across the members (the paper's Section 4.1
// load-balance lever applied to coordinator quorums). Retries broadcast to
// the whole group — any live quorum of members masks the rest.
// Single-coordinated shards always target the primary plus its standbys.
func (h *clientHandler) targets(shard, attempt int) []msg.NodeID {
	if !h.cfg.Multicoordinated() {
		return h.cfg.ShardCoords(shard)
	}
	group := h.cfg.ShardGroup(shard)
	if attempt > 0 {
		return group
	}
	q := h.cfg.CoordQuorumSize(shard)
	if q >= len(group) {
		return group
	}
	start := h.rr[shard]
	h.rr[shard] = (start + 1) % len(group)
	h.stats.Rotations++
	out := make([]msg.NodeID, 0, q)
	for i := 0; i < q; i++ {
		out = append(out, group[(start+i)%len(group)])
	}
	return out
}

// OnMessage implements node.Handler: submissions are routed, replies resolve
// calls; everything else is ignored.
func (h *clientHandler) OnMessage(_ msg.NodeID, m msg.Message) {
	if pm, ok := m.(proposeMsg); ok {
		h.proposeCall(pm.cmd, pm.call)
		return
	}
	mm, ok := m.(msg.Reply)
	if !ok {
		return
	}
	call, ok := h.calls[mm.CmdID]
	if !ok {
		h.stats.DupReplies++
		// A late reply for an abandoned call still settles its batch, so
		// the retransmission of a decided slot stops.
		h.settle(mm.CmdID)
		return
	}
	delete(h.calls, mm.CmdID)
	h.stats.Resolved++
	call.result, call.end = mm.Result, time.Now()
	close(call.done)
	h.settle(mm.CmdID)
}

// settle removes a resolved command from its batch's waiting count,
// retiring the batch once every constituent has answered.
func (h *clientHandler) settle(cmdID uint64) {
	bid, ok := h.batchOf[cmdID]
	if !ok {
		return
	}
	delete(h.batchOf, cmdID)
	b, ok := h.pend[bid]
	if !ok {
		return
	}
	if b.waiting--; b.waiting <= 0 {
		delete(h.pend, bid)
	}
}

// OnTimer implements node.TimerHandler: due batches are retransmitted to the
// whole coordinator group with exponential backoff; batches past their
// deadline fail their remaining calls but keep retransmitting until their
// slots are known decided (see abandon).
func (h *clientHandler) OnTimer(tag int) {
	switch tag {
	case tagClientFlush:
		h.flushArmed = false
		h.router.Tick()
		h.alignShards()
		if h.spec.batchWaitTicks() > 0 && h.router.Pending() > 0 {
			h.flushArmed = true
			h.env.SetTimer(1, tagClientFlush)
		}
		return
	case tagClientRetry:
		h.retryArmed = false
		now := h.env.Now()
		// Deterministic retry order (map iteration is not).
		ids := make([]uint64, 0, len(h.pend))
		for id := range h.pend {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b := h.pend[id]
			if !b.abandoned && now >= b.deadline {
				h.abandon(id, b, fmt.Errorf("deploy: no reply for command %d after %d attempts", id, b.attempts+1))
			}
			if now < b.next {
				continue
			}
			b.attempts++
			h.stats.Retries++
			backoff := h.retryEvery << uint(min(b.attempts, 5))
			b.next = now + backoff
			node.Broadcast(h.env, h.targets(b.shard, b.attempts),
				msg.Propose{Cmd: b.cmd, Seq: b.seq, HasSeq: true})
			if b.attempts >= 2 {
				// The command may already be applied with every reply frame
				// lost — the consensus path deduplicates it and never
				// replies again. Probe the learners' replay caches too.
				node.Broadcast(h.env, h.cfg.Learners,
					msg.Propose{Cmd: b.cmd, Seq: b.seq, HasSeq: true})
				h.stats.ReplayProbes++
			}
		}
		h.armRetry()
	}
}

// alignShards pads lagging, idle shards with no-op commands until every
// shard's flushed sequence count matches the leader's: each shard's stream
// then covers the same sequence numbers, so the merged instance order has no
// gap that no proposal will ever fill (one slow or time-flushed shard would
// otherwise stall delivery forever — the Mencius skip problem). No-ops are
// client-stamped and tracked like any proposal, so a lost skip is retried
// through the same coordinator-group path and is itself crash-masked;
// learner replicas acknowledge and discard them.
func (h *clientHandler) alignShards() {
	if h.cfg.NShards() < 2 {
		return
	}
	for {
		seqs := h.router.Seqs()
		var hi uint64
		for _, s := range seqs {
			if s > hi {
				hi = s
			}
		}
		padded := false
		for k, s := range seqs {
			if s < hi && h.router.PendingShard(k) == 0 {
				cmd := cstruct.Cmd{ID: cmdID(h.env.ID(), h.seq.Add(1)-1), Key: noopKey, Op: cstruct.OpWrite}
				// Tracked like a user call so the retry/settlement machinery
				// covers the skip, but never handed out.
				h.calls[cmd.ID] = &Call{ID: cmd.ID, done: make(chan struct{}), start: time.Now()}
				h.stats.Noops++
				h.router.RouteTo(k, cmd)
				padded = true
			}
		}
		if !padded {
			return
		}
		h.router.FlushAll()
	}
}

// abandon fails a batch's outstanding calls at the deadline but keeps the
// batch itself retransmitting until its replies prove the slot decided. The
// callers get the standard at-most-once ambiguity (the command may yet
// apply); the shard stream gets the guarantee it actually needs — every
// claimed sequence number is eventually proposed until filled, so a client
// timeout can never leave a permanent gap that stalls apply for everyone.
func (h *clientHandler) abandon(bid uint64, b *pendingBatch, err error) {
	inner, isBatch := batch.UnpackMeta(b.cmd)
	if !isBatch {
		inner = []cstruct.Cmd{b.cmd}
	}
	for _, c := range inner {
		call, ok := h.calls[c.ID]
		if !ok {
			continue
		}
		delete(h.calls, c.ID)
		h.stats.Failed++
		call.err, call.end = err, time.Now()
		close(call.done)
	}
	b.abandoned = true
	h.stats.Abandoned++
}

// fail resolves every unanswered call of a batch with err and retires it.
func (h *clientHandler) fail(bid uint64, b *pendingBatch, err error) {
	inner, isBatch := batch.UnpackMeta(b.cmd)
	if !isBatch {
		inner = []cstruct.Cmd{b.cmd}
	}
	for _, c := range inner {
		call, ok := h.calls[c.ID]
		if !ok {
			continue
		}
		delete(h.calls, c.ID)
		delete(h.batchOf, c.ID)
		h.stats.Failed++
		call.err, call.end = err, time.Now()
		close(call.done)
	}
	delete(h.pend, bid)
}

// failAll fails every in-flight call (client shutdown).
func (h *clientHandler) failAll(err error) {
	for bid, b := range h.pend {
		h.fail(bid, b, err)
	}
	for id, call := range h.calls {
		delete(h.calls, id)
		h.stats.Failed++
		call.err, call.end = err, time.Now()
		close(call.done)
	}
}

func (h *clientHandler) armRetry() {
	if h.retryArmed || len(h.pend) == 0 {
		return
	}
	h.retryArmed = true
	h.env.SetTimer(h.retryEvery, tagClientRetry)
}
