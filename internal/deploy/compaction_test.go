package deploy

import (
	"fmt"
	"testing"
	"time"
)

// compactionSpec is the shared tuning of the compaction tests: small
// snapshot interval and retention so the watermark machinery engages within
// a few dozen commands, single-command batches so instances track commands.
func compactionSpec(snapDir string) ClusterSpec {
	spec := LocalSpec(2, 3, 3, 2, 1)
	spec.BatchMax = 1
	spec.RetryEvery = 20 * time.Millisecond
	spec.SnapshotEvery = 16
	spec.Retain = 8
	spec.SnapshotDir = snapDir
	return spec
}

// drive submits n writes and waits for them.
func drive(t *testing.T, cli *Client, n, from int) {
	t.Helper()
	calls := make([]*Call, 0, n)
	for i := 0; i < n; i++ {
		calls = append(calls, cli.Set(fmt.Sprintf("k%d", (from+i)%8), fmt.Sprintf("v%d", from+i)))
	}
	if err := cli.Wait(calls, 30*time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// waitTruncated polls until every listed learner has truncated its retained
// log (logBase > 0), i.e. the cluster watermark advanced past the retention
// slack everywhere.
func waitTruncated(t *testing.T, rep *Replica, learners []uint32) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		all := true
		for _, l := range learners {
			_, _, base, err := rep.Compaction(l)
			if err != nil {
				t.Fatal(err)
			}
			if base == 0 {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			for _, l := range learners {
				fr, wm, base, _ := rep.Compaction(l)
				t.Logf("learner %d: frontier=%d watermark=%d logBase=%d", l, fr, wm, base)
			}
			t.Fatal("watermark never advanced past the retention slack")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLiveCompactionBoundsState: with SnapshotEvery set, a steady write
// stream drives the full watermark pipeline — learners cut snapshots, gossip
// Done, ratchet the cluster watermark, truncate their retained logs, evict
// reply-cache records, and the acceptors truncate their vote history to the
// same floor — while the replicas stay converged.
func TestLiveCompactionBoundsState(t *testing.T) {
	spec := compactionSpec("")
	spec.WALDir = t.TempDir()
	rep, cli := openLocal(t, spec)

	const n = 96
	drive(t, cli, n, 0)
	learners := []uint32{300, 301}
	for _, l := range learners {
		if err := rep.WaitApplied(l, n, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitTruncated(t, rep, learners)

	cs := rep.CompactionStats()
	if cs.Saves < 2 {
		t.Fatalf("snapshot saves = %d, want >= 2", cs.Saves)
	}
	if cs.Watermark == 0 || cs.LogBase == 0 {
		t.Fatalf("watermark = %d, logBase = %d: compaction never engaged", cs.Watermark, cs.LogBase)
	}
	for _, l := range learners {
		fr, wm, base, _ := rep.Compaction(l)
		if fr < wm {
			t.Fatalf("learner %d frontier %d below its own watermark %d", l, fr, wm)
		}
		if want := wm - uint64(spec.Retain); base != want {
			t.Fatalf("learner %d logBase = %d, want watermark-retain = %d", l, base, want)
		}
	}
	// With traffic stopped the watermark catches up to the frontiers, and
	// the resident log settles at a bound set by the knobs — one snapshot
	// interval of un-cut tail plus the retention slack — not by the run
	// length. This is the plateau claim in miniature.
	bound := spec.SnapshotEvery + spec.Retain
	deadline := time.Now().Add(10 * time.Second)
	for rep.CompactionStats().ResidentLog > bound {
		if time.Now().After(deadline) {
			t.Fatalf("resident log %d never settled under SnapshotEvery+Retain = %d",
				rep.CompactionStats().ResidentLog, bound)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Acceptors follow the gossiped watermark.
	deadline = time.Now().Add(10 * time.Second)
	for {
		floors := rep.AcceptorFloors()
		advanced := 0
		for _, f := range floors {
			if f > 0 {
				advanced++
			}
		}
		if advanced == len(floors) && len(floors) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acceptor floors never advanced: %v", floors)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And the replicas still agree.
	s0, _ := rep.Snapshot(300)
	s1, _ := rep.Snapshot(301)
	if s0 != s1 {
		t.Fatalf("replicas diverged under compaction:\n%s\n%s", s0, s1)
	}
	o0, _ := rep.Order(300)
	o1, _ := rep.Order(301)
	if fmt.Sprint(o0) != fmt.Sprint(o1) {
		t.Fatal("orders diverged under compaction")
	}
}

// TestLiveSnapshotShippingRestart: a learner with memory-only snapshots that
// restarts below the cluster watermark cannot log-pull — its peer compacted
// the prefix away and refuses with the floor — so it must install the peer's
// snapshot and replay only the log suffix. The restarted learner converges
// to the same state and order.
func TestLiveSnapshotShippingRestart(t *testing.T) {
	spec := compactionSpec("") // volatile snapshots: a killed learner loses them
	rep, cli := openLocal(t, spec)

	const n = 96
	drive(t, cli, n, 0)
	waitTruncated(t, rep, []uint32{300, 301})

	if !rep.Kill(301) {
		t.Fatal("kill failed")
	}
	if err := rep.Restart(301); err != nil {
		t.Fatal(err)
	}
	// The restarted learner is at instance 0, below its peer's retention
	// floor: the log pull must escalate to snapshot transfer and converge.
	deadline := time.Now().Add(20 * time.Second)
	for {
		synced, err := rep.CatchupSynced(301)
		if err == nil && synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted learner never synced: %+v", rep.CatchupStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := rep.CatchupStats()
	if st.SnapInstalls < 1 {
		t.Fatalf("catch-up stats %+v: expected a snapshot install (log pull below the floor must escalate)", st)
	}
	o0, _ := rep.Order(300)
	o1, _ := rep.Order(301)
	if fmt.Sprint(o0) != fmt.Sprint(o1) {
		t.Fatalf("restarted learner's order diverged:\n%v\n%v", o0, o1)
	}
	s0, _ := rep.Snapshot(300)
	s1, _ := rep.Snapshot(301)
	if s0 != s1 {
		t.Fatalf("restarted learner's state diverged:\n%s\n%s", s0, s1)
	}
	// New writes reach the reinstalled learner too.
	drive(t, cli, 8, n)
	if err := rep.WaitApplied(301, n+8, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestLiveDurableSnapshotRestart: with SnapshotDir set, a restarted learner
// reloads its own newest snapshot from disk and pulls only the log suffix —
// no snapshot transfer crosses the wire even though the peer refuses pulls
// below its floor.
func TestLiveDurableSnapshotRestart(t *testing.T) {
	spec := compactionSpec(t.TempDir())
	rep, cli := openLocal(t, spec)

	const n = 96
	drive(t, cli, n, 0)
	waitTruncated(t, rep, []uint32{300, 301})

	fr, _, _, err := rep.Compaction(301)
	if err != nil || fr == 0 {
		t.Fatalf("learner 301 has no snapshot frontier before the kill (%v)", err)
	}
	if !rep.Kill(301) {
		t.Fatal("kill failed")
	}
	if err := rep.Restart(301); err != nil {
		t.Fatal(err)
	}
	// The durable reload puts the learner at its old frontier immediately.
	next, _, err := rep.Progress(301)
	if err != nil {
		t.Fatal(err)
	}
	if next < fr {
		t.Fatalf("restarted frontier %d below the durable snapshot frontier %d", next, fr)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		synced, err := rep.CatchupSynced(301)
		if err == nil && synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted learner never synced: %+v", rep.CatchupStats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := rep.CatchupStats(); st.SnapInstalls != 0 || st.SnapReqs != 0 {
		t.Fatalf("catch-up stats %+v: durable reload should pull only the log suffix, not ship a snapshot", st)
	}
	o0, _ := rep.Order(300)
	o1, _ := rep.Order(301)
	if fmt.Sprint(o0) != fmt.Sprint(o1) {
		t.Fatal("orders diverged after durable-snapshot restart")
	}
	s0, _ := rep.Snapshot(300)
	s1, _ := rep.Snapshot(301)
	if s0 != s1 {
		t.Fatal("states diverged after durable-snapshot restart")
	}
}
