package storage

import (
	"encoding/gob"

	"mcpaxos/internal/ballot"
	"mcpaxos/internal/cstruct"
)

// Stable is the stable-storage contract acceptors write through: the paper's
// "some sort of local stable storage" (Section 2.1.1). Two implementations
// exist: the simulated in-memory Disk (this package) and the on-disk
// write-ahead log (internal/wal). Both count synchronous writes, the
// currency of the paper's disk-write arguments (Sections 4.2 and 4.4), so
// the writes-per-command claims stay checkable regardless of backend.
//
// Durability contract: Put and PutAll return only once the records are
// stable — an acceptor may send its 2b the moment the call returns. PutAll
// stores its records with a single synchronous write (one group-commit
// batch); implementations may additionally coalesce concurrent calls into
// one physical fsync. A backend that cannot make a record durable must
// panic rather than return: acking an accept without stable storage would
// break the Paxos safety argument (Section 4.4).
type Stable interface {
	// Put durably stores value under key, counting one synchronous write.
	Put(key string, value any)
	// PutAll durably stores several records with a single synchronous
	// write (one group-commit batch).
	PutAll(records map[string]any)
	// Get reads the latest record stored under key.
	Get(key string) (any, bool)
	// Writes returns the number of synchronous writes performed so far.
	Writes() uint64
	// ResetWrites zeroes the write counter (the data stays).
	ResetWrites()
	// Len returns the number of distinct keys stored.
	Len() int
}

// ShardedStable is an optional extension of Stable for sharded deployments
// (N leaders over instance residue classes): PutAllShard is PutAll routed
// through the backend's per-shard commit stream, so each shard's accepts form
// an attributable stream — with per-stream accounting — while still feeding
// the one shared, replayable log. Recovery is unchanged: replaying the single
// log rebuilds every shard's votes. Backends without shard streams are used
// through the PutAllSharded helper, which falls back to plain PutAll.
type ShardedStable interface {
	Stable
	// PutAllShard durably stores records through shard's commit stream:
	// one logical synchronous write on the shared log.
	PutAllShard(shard int, records map[string]any)
}

// PutAllSharded writes one commit batch through st's shard stream when the
// backend has one, and through plain PutAll otherwise.
func PutAllSharded(st Stable, shard int, records map[string]any) {
	if ss, ok := st.(ShardedStable); ok {
		ss.PutAllShard(shard, records)
		return
	}
	st.PutAll(records)
}

// Compacter is an optional extension of Stable for log compaction: once the
// cluster-wide watermark passes an instance range, the acceptor drops the
// range's vote records durably and asks the backend to reclaim the physical
// space. Backends without compaction support simply retain everything —
// correct, just unbounded — so callers go through DropKeys/CompactStable.
type Compacter interface {
	// Drop durably deletes the records under keys, counting one synchronous
	// write for the batch (a deletion must survive a crash exactly like a
	// Put, or the keys would resurrect on replay).
	Drop(keys []string)
	// Compact reclaims the space of dropped and superseded records (for a
	// WAL: rewrite the live index and GC dead segments). It may be a no-op
	// for backends whose Drop already frees space.
	Compact() error
}

// DropKeys durably deletes keys from st when the backend supports
// compaction; it reports whether anything could be dropped.
func DropKeys(st Stable, keys []string) bool {
	c, ok := st.(Compacter)
	if !ok || len(keys) == 0 {
		return ok
	}
	c.Drop(keys)
	return true
}

// CompactStable asks st to reclaim dead space, if it can.
func CompactStable(st Stable) error {
	if c, ok := st.(Compacter); ok {
		return c.Compact()
	}
	return nil
}

var _ Stable = (*Disk)(nil)

// VoteRec is the stable accept record every acceptor variant persists: the
// vote's round plus the accepted value flattened to its representative
// command sequence (every c-struct is ⊥ • σ for its Commands() σ, so the
// value is rebuilt with the deployment's c-struct set on restore, exactly
// as the wire codec does). A shared, gob-friendly shape keeps the on-disk
// WAL backend-agnostic: it serializes records without knowing which
// protocol wrote them.
type VoteRec struct {
	// Inst scopes the vote to one consensus instance (multi-instance
	// classic deployments); generalized single-instance protocols use 0.
	Inst uint64
	// VRnd is the round the value was accepted in.
	VRnd ballot.Ballot
	// Cmds is the accepted value's representative command sequence.
	Cmds []cstruct.Cmd
}

// TallyRec is the persisted coordinator-vote tally of one in-progress
// multicoordinated instance: the acceptor has received matching 2a messages
// from Coords — fewer than a coordinator quorum — for the value Cmds in
// round Rnd. Persisting the partial tally is not required for safety (the
// recovery incarnation bump already dominates every pre-crash round) but it
// makes the in-flight coordinator votes replayable: a restarted acceptor
// reports exactly which group members had forwarded an instance when the
// process died, instead of losing that evidence with the heap.
type TallyRec struct {
	// Inst is the tallied consensus instance.
	Inst uint64
	// Rnd is the multicoordinated round the 2a messages belong to.
	Rnd ballot.Ballot
	// Coords lists the coordinator ids (msg.NodeID values) whose matching
	// 2a messages have been received so far.
	Coords []uint32
	// Cmds is the forwarded value's representative command sequence.
	Cmds []cstruct.Cmd
}

// Stable record keys shared by the acceptor implementations.
const (
	// KeyMCount holds the uint32 incarnation counter bumped once per
	// recovery (Section 4.4).
	KeyMCount = "mcount"
	// KeyMaxInst holds the uint64 high-water instance for recovery scans
	// of multi-instance logs.
	KeyMaxInst = "maxinst"
	// KeyVote holds the single VoteRec of single-instance acceptors.
	KeyVote = "vote"
	// KeyRnd holds the persisted round of the PersistRnd ablation.
	KeyRnd = "rnd"
	// KeyFloor holds the uint64 compaction floor: vote and tally records
	// below it were truncated (the cluster watermark passed them), so
	// recovery scans start here and catch-up requests below it are refused.
	KeyFloor = "floor"
)

// The record vocabulary is registered with gob so the WAL backend can
// serialize Stable values held as interfaces. Registration is global, so
// importing this package (which every Stable user does) is enough.
func init() {
	gob.Register(uint32(0))
	gob.Register(uint64(0))
	gob.Register(VoteRec{})
	gob.Register(TallyRec{})
	gob.Register(ballot.Ballot{})
}
