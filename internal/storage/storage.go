// Package storage simulates the stable storage the paper assumes processes
// use to survive crashes ("some sort of local stable storage", Section
// 2.1.1). A Disk holds records that survive crash/recovery cycles and counts
// synchronous writes, which is the currency of the paper's disk-write
// arguments (Sections 4.2 and 4.4): acceptors must write on every accept,
// coordinators never write, and the MCount scheme trades per-1b writes for
// one write per recovery.
package storage

import "sync"

// Disk is simulated stable storage for one process. The zero value is an
// empty, usable disk. Records written to a Disk survive the owning
// process's crashes (the process's volatile state does not). Disk is safe
// for concurrent use.
type Disk struct {
	mu     sync.Mutex
	recs   map[string]any
	writes uint64
}

// Put durably stores value under key, counting one synchronous disk write.
func (d *Disk) Put(key string, value any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.recs == nil {
		d.recs = make(map[string]any)
	}
	d.recs[key] = value
	d.writes++
}

// PutAll durably stores several records with a single synchronous write,
// modelling the group commit of one record page.
func (d *Disk) PutAll(records map[string]any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.recs == nil {
		d.recs = make(map[string]any)
	}
	for k, v := range records {
		d.recs[k] = v
	}
	d.writes++
}

// Get reads the record stored under key.
func (d *Disk) Get(key string) (any, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.recs[key]
	return v, ok
}

// Writes returns the number of synchronous writes performed so far.
func (d *Disk) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// ResetWrites zeroes the write counter (the data stays). Benchmarks use it
// to scope counting to a measurement window.
func (d *Disk) ResetWrites() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes = 0
}

// Wipe destroys both data and counters, modelling a catastrophic disk loss.
// The Paxos safety argument does not allow acceptors to survive this
// (Section 4.4); it exists for tests.
func (d *Disk) Wipe() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recs = nil
	d.writes = 0
}

// Len returns the number of stored records.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.recs)
}

// Drop implements Compacter: the records vanish durably with one write.
func (d *Disk) Drop(keys []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, k := range keys {
		delete(d.recs, k)
	}
	d.writes++
}

// Compact implements Compacter. A map holds no dead space: no-op.
func (d *Disk) Compact() error { return nil }
