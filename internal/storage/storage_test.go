package storage

import (
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	var d Disk
	if _, ok := d.Get("missing"); ok {
		t.Errorf("empty disk must miss")
	}
	d.Put("k", 42)
	v, ok := d.Get("k")
	if !ok || v.(int) != 42 {
		t.Errorf("Get = %v/%v", v, ok)
	}
	if d.Writes() != 1 {
		t.Errorf("Writes = %d", d.Writes())
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestPutAllCountsOneWrite(t *testing.T) {
	var d Disk
	d.PutAll(map[string]any{"a": 1, "b": 2})
	if d.Writes() != 1 {
		t.Errorf("group commit must count one write, got %d", d.Writes())
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestResetWritesKeepsData(t *testing.T) {
	var d Disk
	d.Put("k", "v")
	d.ResetWrites()
	if d.Writes() != 0 {
		t.Errorf("counter not reset")
	}
	if _, ok := d.Get("k"); !ok {
		t.Errorf("data lost by counter reset")
	}
}

func TestWipe(t *testing.T) {
	var d Disk
	d.Put("k", "v")
	d.Wipe()
	if d.Len() != 0 || d.Writes() != 0 {
		t.Errorf("wipe incomplete")
	}
}

func TestOverwriteCounts(t *testing.T) {
	var d Disk
	d.Put("k", 1)
	d.Put("k", 2)
	if d.Writes() != 2 {
		t.Errorf("each Put is one synchronous write, got %d", d.Writes())
	}
	v, _ := d.Get("k")
	if v.(int) != 2 {
		t.Errorf("overwrite lost")
	}
}

func TestConcurrentAccess(t *testing.T) {
	var d Disk
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Put("k", i)
				d.Get("k")
				d.Writes()
			}
		}(i)
	}
	wg.Wait()
	if d.Writes() != 800 {
		t.Errorf("writes = %d, want 800", d.Writes())
	}
}
