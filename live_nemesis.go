package mcpaxos

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mcpaxos/internal/catchup"
	"mcpaxos/internal/deploy"
	"mcpaxos/internal/faults"
	"mcpaxos/internal/linearize"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/nemesis"
)

// This file runs the nemesis experiment of experiments_nemesis.go on the
// live path: the same workload generator and fault schedule, but over real
// loopback TCP with wall-clock time — the injector sits on every endpoint's
// send path, node crashes are real Kill/Restart (acceptors recover from
// their WALs), and the history checker judges wall-clock invocation and
// response edges. It is the harness behind `paxosbench -exp nemesis`.

// LiveNemesisResult is the outcome of one live nemesis run.
type LiveNemesisResult struct {
	// Seed reproduces the workload and schedule.
	Seed int64
	// Ops counts operations issued; Resolved those that drew a reply;
	// Applied the commands in the longest learner's merged order.
	Ops, Resolved, Applied int
	// Acked counts the ops whose reply arrived before the client's request
	// timeout: the convergence judgment requires each of them applied on
	// every learner.
	Acked int
	// FaultEvents is the number of schedule events enacted.
	FaultEvents int
	// Net is the injector's accounting.
	Net faults.Stats
	// Client is the client endpoint's own accounting (retries, rotations,
	// abandoned batches, replay probes).
	Client ClientStats
	// Replays counts replies the learners served from their replay caches.
	Replays uint64
	// Catchup sums the learners' catch-up fetcher activity (including
	// snapshot-shipping escalations).
	Catchup catchup.Stats
	// Compaction is the learners' snapshot/watermark state at the end of the
	// run: how many snapshots were cut, how far truncation advanced, and the
	// largest retained log.
	Compaction deploy.CompactionStats
	// WALSegs / WALSnaps / WALBytes sum the acceptors' on-disk footprint at
	// the end of the run — the quantity the watermark protocol bounds.
	WALSegs, WALSnaps int
	WALBytes          int64
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// Ok reports a clean run; Failure says what broke otherwise.
	Ok      bool
	Failure string
}

// RunLiveNemesis executes one seed of the nemesis experiment over TCP:
// clients closed-loop workers share one client endpoint, opsPerClient ops
// each, while the schedule partitions links, kills and restarts nodes and
// degrades the network. walDir hosts the acceptors' WALs (pass a temp dir).
func RunLiveNemesis(seed int64, clients, opsPerClient int, walDir string) (LiveNemesisResult, error) {
	res := LiveNemesisResult{Seed: seed, Ok: true}
	fail := func(f string, args ...any) {
		if res.Ok {
			res.Ok, res.Failure = false, fmt.Sprintf(f, args...)
		}
	}

	inj := faults.New(seed + 1)
	spec := LocalSpec(2, 3, 3, 2, 1)
	spec.BatchMax = 1
	spec.RetryEvery = 10 * time.Millisecond
	// Every scheduled fault ends by 3/4 of the horizon; a call still
	// unresolved seconds after that lost its reply for good, so a short
	// timeout only trims the stall tail, never a recoverable op.
	spec.RequestTimeout = 6 * time.Second
	spec.WALDir = walDir
	// Compaction runs throughout, tuned aggressively enough (relative to the
	// bounded op counts of a nemesis seed) that the watermark actually
	// advances mid-schedule: learners snapshot every 16 merged instances,
	// keep 8 below the watermark pullable, and persist their snapshots next
	// to the WALs — so a learner killed and restarted below the watermark
	// rejoins through its own durable snapshot or, when it trails further, a
	// peer's shipped one, and the acceptors' vote history is truncated live
	// while the adversary runs.
	spec.SnapshotEvery = 16
	spec.Retain = 8
	spec.SnapshotDir = filepath.Join(walDir, "snaps")
	spec.Faults = inj
	spec, err := spec.ResolveEphemeral()
	if err != nil {
		return res, err
	}
	rep, err := OpenReplica(spec)
	if err != nil {
		return res, err
	}
	defer rep.Close()
	cli, err := DialClient(spec, spec.Clients[0].ID)
	if err != nil {
		return res, err
	}
	defer cli.Close()

	// Establish the rounds before the adversary wakes up.
	if err := cli.Wait([]*Call{cli.Set("warmup", "x")}, 30*time.Second); err != nil {
		return res, fmt.Errorf("warmup: %w", err)
	}

	topo := nemesis.Topology{
		Proposers: []msg.NodeID{msg.NodeID(spec.Clients[0].ID)},
		Coords: [][]msg.NodeID{
			{msg.NodeID(spec.Coords[0].ID), msg.NodeID(spec.Coords[2].ID), msg.NodeID(spec.Coords[4].ID)},
			{msg.NodeID(spec.Coords[1].ID), msg.NodeID(spec.Coords[3].ID), msg.NodeID(spec.Coords[5].ID)},
		},
		Acceptors: []msg.NodeID{msg.NodeID(spec.Acceptors[0].ID), msg.NodeID(spec.Acceptors[1].ID), msg.NodeID(spec.Acceptors[2].ID)},
		Learners:  []msg.NodeID{msg.NodeID(spec.Learners[0].ID), msg.NodeID(spec.Learners[1].ID)},
		F:         1,
	}
	const horizonTicks = 2500 // ~2.5s of hostility at the default 1ms tick
	// The live harness runs the full repertoire: learner kills exercise the
	// catch-up rejoin, quorum partitions stall a shard until the heal, clock
	// skew windows stretch and shrink every timeout, primary kills force the
	// ingress stamping handoff mid-stream, and a background loss floor keeps
	// the discrete faults from ever running on a clean network.
	schedule := nemesis.ScheduleWith(seed, topo, horizonTicks, nemesis.Options{
		KillLearners:    true,
		QuorumPartition: true,
		ClockSkew:       true,
		KillPrimary:     true,
		Background:      true,
	})
	res.FaultEvents = len(schedule)

	start := time.Now()
	var nemesisWG sync.WaitGroup
	nemesisWG.Add(1)
	go func() {
		defer nemesisWG.Done()
		tick := time.Millisecond
		for _, ev := range schedule {
			time.Sleep(time.Until(start.Add(time.Duration(ev.At) * tick)))
			if nemesis.Apply(inj, ev) {
				continue
			}
			switch ev.Kind {
			case nemesis.FaultCrash:
				rep.Kill(uint32(ev.Node))
			case nemesis.FaultRecover:
				// A failed restart (e.g. the port momentarily unbindable) is a
				// node that stays down — the deployment must survive it, but
				// the harness records it rather than hiding it.
				if err := rep.Restart(uint32(ev.Node)); err != nil {
					fail("restart %d: %v", ev.Node, err)
				}
			}
		}
	}()

	// Closed-loop workers: each issues its op sequence through the shared
	// client endpoint, recording invoke/response edges on the wall clock.
	workload := nemesis.Workload(seed, nemesis.WorkloadOpts{
		Clients: clients, OpsPerClient: opsPerClient, Keys: 4,
	})
	hist := &linearize.History{}
	var (
		mu      sync.Mutex
		writeID = make(map[uint64]int) // cmd ID → history index (unresolved writes)
		acked   []uint64               // cmd IDs whose reply arrived in time
	)
	// Pace each worker so its ops span the fault window: an unpaced closed
	// loop finishes in tens of milliseconds on an idle machine, before the
	// first scheduled fault ever fires, and the adversary tests nothing.
	pace := horizonTicks * time.Millisecond * 3 / 4 / time.Duration(opsPerClient)
	var workerWG sync.WaitGroup
	for c := range workload {
		workerWG.Add(1)
		go func(c int) {
			defer workerWG.Done()
			for _, op := range workload[c] {
				var kind linearize.Kind
				switch op.Kind {
				case nemesis.OpSet:
					kind = linearize.Set
				case nemesis.OpDel:
					kind = linearize.Del
				default:
					kind = linearize.Get
				}
				idx := hist.Invoke(uint64(c), kind, op.Key, op.Value, time.Now().UnixNano())
				var call *Call
				switch kind {
				case linearize.Set:
					call = cli.Set(op.Key, op.Value)
				case linearize.Del:
					call = cli.Del(op.Key)
				default:
					call = cli.Get(op.Key)
				}
				cli.Flush()
				out, err := call.Result()
				if err != nil {
					// No response: a write stays in the history with Ret = ∞
					// if the merged order proves it applied; a read constrains
					// nothing and is discarded either way.
					mu.Lock()
					if kind == linearize.Get {
						hist.Discard(idx)
					} else {
						writeID[call.ID] = idx
					}
					mu.Unlock()
					time.Sleep(pace)
					continue
				}
				found := strings.HasPrefix(out, "=")
				val := ""
				if found {
					val = out[1:]
				}
				hist.Resolve(idx, val, found, time.Now().UnixNano())
				mu.Lock()
				acked = append(acked, call.ID)
				mu.Unlock()
				time.Sleep(pace)
			}
		}(c)
	}
	workerWG.Wait()
	nemesisWG.Wait()
	inj.Clear()
	res.Elapsed = time.Since(start)
	res.Net = inj.Stats()
	res.Ops = clients * opsPerClient
	mu.Lock()
	res.Acked = len(acked)
	mu.Unlock()

	// Let in-flight traffic and any pending catch-up pull settle, then
	// snapshot every learner's merged order.
	learners := []uint32{spec.Learners[0].ID, spec.Learners[1].ID}
	orders := stableOrders(rep, learners, 10*time.Second)

	// Convergence judgment, part 1: no learner may end the run stalled
	// behind a gap — learned instances buffered above a frozen frontier
	// mean a decided instance was lost for good.
	for i, l := range learners {
		if _, buffered, err := rep.Progress(l); err != nil {
			fail("learner %d progress: %v", l, err)
		} else if buffered > 0 {
			fail("learner %d ends stalled: %d instances buffered behind a gap (order %d)",
				l, buffered, len(orders[i]))
		}
	}

	// Part 2: the orders are merged prefixes of one total order — each must
	// prefix the longest, and none may repeat a command.
	long := orders[0]
	for _, o := range orders[1:] {
		if len(o) > len(long) {
			long = o
		}
	}
	perLearner := make([]map[uint64]bool, len(orders))
	for i, o := range orders {
		for j, id := range o {
			if long[j] != id {
				fail("learner %d order diverges at position %d: %d vs %d", learners[i], j, long[j], id)
				break
			}
		}
		m := make(map[uint64]bool, len(o))
		for _, id := range o {
			if m[id] {
				fail("learner %d merged command %d twice", learners[i], id)
			}
			m[id] = true
		}
		perLearner[i] = m
	}
	res.Applied = len(long)
	seen := perLearner[0]
	if len(orders) > 1 && len(orders[1]) > len(orders[0]) {
		seen = perLearner[1]
	}

	// Part 3: every acknowledged op is applied on every learner — a reply
	// promises the command a slot in the total order, and catch-up plus the
	// quiet tail must have propagated that slot everywhere, restarted
	// learners included.
	mu.Lock()
	ackedIDs := append([]uint64(nil), acked...)
	mu.Unlock()
	for _, id := range ackedIDs {
		for i, m := range perLearner {
			if !m[id] {
				fail("acked command %d missing from learner %d's order", id, learners[i])
			}
		}
	}

	// Classify unresolved writes against the merged order: applied writes
	// stay (Ret = ∞, they linearize somewhere after their call), unapplied
	// ones are proven side-effect-free and leave the history.
	mu.Lock()
	for id, idx := range writeID {
		if !seen[id] {
			hist.Discard(idx)
		}
	}
	mu.Unlock()
	res.Resolved = hist.Resolved()
	res.Client = cli.Stats()
	res.Replays = rep.Replays()
	res.Catchup = rep.CatchupStats()
	res.Compaction = rep.CompactionStats()
	res.WALSegs, res.WALSnaps, res.WALBytes = rep.WALDiskStats()

	if r := linearize.Check(hist.Ops()); !r.Ok {
		fail("history not linearizable (key %s): %s", r.Key, r.Info)
	}
	return res, nil
}

// stableOrders polls the learners until every merged order stops growing
// with nothing buffered behind a gap (two consecutive identical snapshots
// 150ms apart) or the timeout passes. Waiting on the buffered count too
// matters after a catch-up resync: the order length freezes while the gap
// watch re-probes, and judging that snapshot would misreport a stall the
// fetcher was already repairing.
func stableOrders(rep *Replica, learners []uint32, timeout time.Duration) [][]uint64 {
	deadline := time.Now().Add(timeout)
	prev := make([]int, len(learners))
	for i := range prev {
		prev[i] = -1
	}
	for {
		cur := make([][]uint64, len(learners))
		stable := true
		for i, l := range learners {
			cur[i], _ = rep.Order(l)
			_, buffered, _ := rep.Progress(l)
			if len(cur[i]) != prev[i] || buffered > 0 {
				stable = false
			}
			prev[i] = len(cur[i])
		}
		if stable || time.Now().After(deadline) {
			return cur
		}
		time.Sleep(150 * time.Millisecond)
	}
}
