package mcpaxos

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mcpaxos/internal/faults"
	"mcpaxos/internal/linearize"
	"mcpaxos/internal/msg"
	"mcpaxos/internal/nemesis"
)

// This file runs the nemesis experiment of experiments_nemesis.go on the
// live path: the same workload generator and fault schedule, but over real
// loopback TCP with wall-clock time — the injector sits on every endpoint's
// send path, node crashes are real Kill/Restart (acceptors recover from
// their WALs), and the history checker judges wall-clock invocation and
// response edges. It is the harness behind `paxosbench -exp nemesis`.

// LiveNemesisResult is the outcome of one live nemesis run.
type LiveNemesisResult struct {
	// Seed reproduces the workload and schedule.
	Seed int64
	// Ops counts operations issued; Resolved those that drew a reply;
	// Applied the commands in the longest learner's merged order.
	Ops, Resolved, Applied int
	// FaultEvents is the number of schedule events enacted.
	FaultEvents int
	// Net is the injector's accounting.
	Net faults.Stats
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// Ok reports a clean run; Failure says what broke otherwise.
	Ok      bool
	Failure string
}

// RunLiveNemesis executes one seed of the nemesis experiment over TCP:
// clients closed-loop workers share one client endpoint, opsPerClient ops
// each, while the schedule partitions links, kills and restarts nodes and
// degrades the network. walDir hosts the acceptors' WALs (pass a temp dir).
func RunLiveNemesis(seed int64, clients, opsPerClient int, walDir string) (LiveNemesisResult, error) {
	res := LiveNemesisResult{Seed: seed, Ok: true}
	fail := func(f string, args ...any) {
		if res.Ok {
			res.Ok, res.Failure = false, fmt.Sprintf(f, args...)
		}
	}

	inj := faults.New(seed + 1)
	spec := LocalSpec(2, 3, 3, 2, 1)
	spec.BatchMax = 1
	spec.RetryEvery = 10 * time.Millisecond
	// Every scheduled fault ends by 3/4 of the horizon; a call still
	// unresolved seconds after that lost its reply for good, so a short
	// timeout only trims the stall tail, never a recoverable op.
	spec.RequestTimeout = 6 * time.Second
	spec.WALDir = walDir
	spec.Faults = inj
	spec, err := spec.ResolveEphemeral()
	if err != nil {
		return res, err
	}
	rep, err := OpenReplica(spec)
	if err != nil {
		return res, err
	}
	defer rep.Close()
	cli, err := DialClient(spec, spec.Clients[0].ID)
	if err != nil {
		return res, err
	}
	defer cli.Close()

	// Establish the rounds before the adversary wakes up.
	if err := cli.Wait([]*Call{cli.Set("warmup", "x")}, 30*time.Second); err != nil {
		return res, fmt.Errorf("warmup: %w", err)
	}

	topo := nemesis.Topology{
		Proposers: []msg.NodeID{msg.NodeID(spec.Clients[0].ID)},
		Coords: [][]msg.NodeID{
			{msg.NodeID(spec.Coords[0].ID), msg.NodeID(spec.Coords[2].ID), msg.NodeID(spec.Coords[4].ID)},
			{msg.NodeID(spec.Coords[1].ID), msg.NodeID(spec.Coords[3].ID), msg.NodeID(spec.Coords[5].ID)},
		},
		Acceptors: []msg.NodeID{msg.NodeID(spec.Acceptors[0].ID), msg.NodeID(spec.Acceptors[1].ID), msg.NodeID(spec.Acceptors[2].ID)},
		Learners:  []msg.NodeID{msg.NodeID(spec.Learners[0].ID), msg.NodeID(spec.Learners[1].ID)},
		F:         1,
	}
	const horizonTicks = 2500 // ~2.5s of hostility at the default 1ms tick
	schedule := nemesis.Schedule(seed, topo, horizonTicks)
	res.FaultEvents = len(schedule)

	start := time.Now()
	var nemesisWG sync.WaitGroup
	nemesisWG.Add(1)
	go func() {
		defer nemesisWG.Done()
		tick := time.Millisecond
		for _, ev := range schedule {
			time.Sleep(time.Until(start.Add(time.Duration(ev.At) * tick)))
			if nemesis.Apply(inj, ev) {
				continue
			}
			switch ev.Kind {
			case nemesis.FaultCrash:
				rep.Kill(uint32(ev.Node))
			case nemesis.FaultRecover:
				// A failed restart (e.g. the port momentarily unbindable) is a
				// node that stays down — the deployment must survive it, but
				// the harness records it rather than hiding it.
				if err := rep.Restart(uint32(ev.Node)); err != nil {
					fail("restart %d: %v", ev.Node, err)
				}
			}
		}
	}()

	// Closed-loop workers: each issues its op sequence through the shared
	// client endpoint, recording invoke/response edges on the wall clock.
	workload := nemesis.Workload(seed, nemesis.WorkloadOpts{
		Clients: clients, OpsPerClient: opsPerClient, Keys: 4,
	})
	hist := &linearize.History{}
	var (
		mu      sync.Mutex
		writeID = make(map[uint64]int) // cmd ID → history index (unresolved writes)
	)
	// Pace each worker so its ops span the fault window: an unpaced closed
	// loop finishes in tens of milliseconds on an idle machine, before the
	// first scheduled fault ever fires, and the adversary tests nothing.
	pace := horizonTicks * time.Millisecond * 3 / 4 / time.Duration(opsPerClient)
	var workerWG sync.WaitGroup
	for c := range workload {
		workerWG.Add(1)
		go func(c int) {
			defer workerWG.Done()
			for _, op := range workload[c] {
				var kind linearize.Kind
				switch op.Kind {
				case nemesis.OpSet:
					kind = linearize.Set
				case nemesis.OpDel:
					kind = linearize.Del
				default:
					kind = linearize.Get
				}
				idx := hist.Invoke(uint64(c), kind, op.Key, op.Value, time.Now().UnixNano())
				var call *Call
				switch kind {
				case linearize.Set:
					call = cli.Set(op.Key, op.Value)
				case linearize.Del:
					call = cli.Del(op.Key)
				default:
					call = cli.Get(op.Key)
				}
				cli.Flush()
				out, err := call.Result()
				if err != nil {
					// No response: a write stays in the history with Ret = ∞
					// if the merged order proves it applied; a read constrains
					// nothing and is discarded either way.
					mu.Lock()
					if kind == linearize.Get {
						hist.Discard(idx)
					} else {
						writeID[call.ID] = idx
					}
					mu.Unlock()
					time.Sleep(pace)
					continue
				}
				found := strings.HasPrefix(out, "=")
				val := ""
				if found {
					val = out[1:]
				}
				hist.Resolve(idx, val, found, time.Now().UnixNano())
				time.Sleep(pace)
			}
		}(c)
	}
	workerWG.Wait()
	nemesisWG.Wait()
	inj.Clear()
	res.Elapsed = time.Since(start)
	res.Net = inj.Stats()
	res.Ops = clients * opsPerClient

	// Let in-flight traffic settle, then snapshot both learners' merged
	// orders once they stop growing.
	l0, l1 := spec.Learners[0].ID, spec.Learners[1].ID
	o0, o1 := stableOrders(rep, l0, l1, 5*time.Second)

	// The orders are merged prefixes of one total order: one must prefix the
	// other, and neither may repeat a command.
	long, short := o0, o1
	if len(o1) > len(o0) {
		long, short = o1, o0
	}
	for i, id := range short {
		if long[i] != id {
			fail("learner orders diverge at position %d: %d vs %d", i, long[i], id)
		}
	}
	seen := make(map[uint64]bool, len(long))
	for _, id := range long {
		if seen[id] {
			fail("command %d merged twice", id)
		}
		seen[id] = true
	}
	res.Applied = len(long)

	// Classify unresolved writes against the merged order: applied writes
	// stay (Ret = ∞, they linearize somewhere after their call), unapplied
	// ones are proven side-effect-free and leave the history.
	mu.Lock()
	for id, idx := range writeID {
		if !seen[id] {
			hist.Discard(idx)
		}
	}
	mu.Unlock()
	res.Resolved = hist.Resolved()

	if r := linearize.Check(hist.Ops()); !r.Ok {
		fail("history not linearizable (key %s): %s", r.Key, r.Info)
	}
	return res, nil
}

// stableOrders polls both learners until their merged orders stop growing
// (two consecutive identical snapshots 150ms apart) or the timeout passes.
func stableOrders(rep *Replica, l0, l1 uint32, timeout time.Duration) ([]uint64, []uint64) {
	deadline := time.Now().Add(timeout)
	var a0, a1 []uint64
	for {
		b0, _ := rep.Order(l0)
		b1, _ := rep.Order(l1)
		if len(b0) == len(a0) && len(b1) == len(a1) {
			return b0, b1
		}
		a0, a1 = b0, b1
		if time.Now().After(deadline) {
			return b0, b1
		}
		time.Sleep(150 * time.Millisecond)
	}
}
