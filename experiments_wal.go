package mcpaxos

import (
	"fmt"
	"os"
	"path/filepath"

	"mcpaxos/internal/batch"
	"mcpaxos/internal/classic"
	"mcpaxos/internal/cstruct"
	"mcpaxos/internal/storage"
	"mcpaxos/internal/wal"
)

// This file implements E11, the durable group-commit experiment: E10's
// command stream runs again, but the acceptors now write through a real
// on-disk WAL (internal/wal) instead of the simulated in-memory Disk. The
// measured currency changes from logical synchronous writes to physical
// fsyncs: unbatched, every accepted value costs each acceptor one fsync
// (the paper's Section 4.4 floor); with batching, one group-commit fsync
// covers a whole batch of commands, driving fsyncs per command per acceptor
// to 1/B. This is the stable-storage half of the heavy-traffic story — the
// message-count half is E10.

// E11Row is one sweep point of the durable group-commit experiment.
type E11Row struct {
	// Mode names the configuration: sequential or batch=B.
	Mode string
	// Commands is the number of client commands pushed through.
	Commands int
	// Instances is the number of consensus instances consumed.
	Instances int
	// Writes is the total logical stable writes across all acceptor WALs.
	Writes uint64
	// Fsyncs is the total physical data-file fsyncs across all acceptor
	// WALs.
	Fsyncs uint64
	// WritesPerCmdPerAcc and FsyncsPerCmdPerAcc normalize per command per
	// acceptor, the paper's unit (E6 reports the simulated counterpart).
	WritesPerCmdPerAcc, FsyncsPerCmdPerAcc float64
}

// e11Cluster builds the classic SMR deployment on WAL-backed acceptors:
// one leader, three acceptors writing to real log files under dir.
func e11Cluster(dir string, seed int64) (*classic.Cluster, []*wal.WAL, error) {
	var (
		wals    []*wal.WAL
		openErr error
	)
	cl := classic.NewCluster(classic.ClusterOpts{
		NCoords: 1, NAcceptors: 3, F: 1, Seed: seed,
		Stable: func(i int) storage.Stable {
			w, err := wal.Open(filepath.Join(dir, fmt.Sprintf("acc%d", i)), wal.Options{})
			if err != nil {
				openErr = err
				return &storage.Disk{}
			}
			wals = append(wals, w)
			return w
		},
	})
	if openErr != nil {
		for _, w := range wals {
			w.Close()
		}
		return nil, nil, openErr
	}
	cl.Lead(0)
	for _, w := range wals {
		w.ResetWrites()
		w.ResetFsyncs()
	}
	return cl, wals, nil
}

func e11Finish(mode string, cl *classic.Cluster, wals []*wal.WAL, commands int) E11Row {
	learned := 0
	for _, cmd := range cl.LearnedCmds {
		if sub, ok := batch.Unpack(cmd); ok {
			learned += len(sub)
		} else {
			learned++
		}
	}
	row := E11Row{Mode: mode, Commands: learned, Instances: len(cl.LearnedCmds)}
	for _, w := range wals {
		row.Writes += w.Writes()
		row.Fsyncs += w.Fsyncs()
	}
	if learned != commands {
		row.Mode += "(INCOMPLETE)"
	}
	if learned > 0 && len(wals) > 0 {
		denom := float64(learned) * float64(len(wals))
		row.WritesPerCmdPerAcc = float64(row.Writes) / denom
		row.FsyncsPerCmdPerAcc = float64(row.Fsyncs) / denom
	}
	for _, w := range wals {
		w.Close()
	}
	return row
}

// RunE11Sequential is the durable baseline: one command per instance, each
// proposed only after the previous one is learned. Every accept is one
// group-commit batch of its own, so fsyncs per command per acceptor is 1 —
// the paper's one-write-per-accept floor made physical.
func RunE11Sequential(dir string, seed int64, commands int) (E11Row, error) {
	cl, wals, err := e11Cluster(dir, seed)
	if err != nil {
		return E11Row{}, err
	}
	for i := 0; i < commands; i++ {
		cl.Prop.Propose(e10Cmd(i))
		cl.Sim.Run()
	}
	return e11Finish("sequential", cl, wals, commands), nil
}

// RunE11Batched groups the stream into batches of batchSize commands: each
// batch is one consensus instance, so each acceptor persists it with one
// group-commit write — one fsync per B commands.
func RunE11Batched(dir string, seed int64, commands, batchSize int) (E11Row, error) {
	cl, wals, err := e11Cluster(dir, seed)
	if err != nil {
		return E11Row{}, err
	}
	b := batch.NewBatcher(batchSize, 0, cl.Sim.Now, func(c cstruct.Cmd) {
		cl.Prop.Propose(c)
	})
	for i := 0; i < commands; i++ {
		b.Add(e10Cmd(i))
	}
	b.Flush()
	cl.Sim.Run()
	return e11Finish(fmt.Sprintf("batch=%d", batchSize), cl, wals, commands), nil
}

// RunE11GroupCommit sweeps the durable modes. Log directories are created
// under a fresh temporary directory that is removed afterwards.
func RunE11GroupCommit(seed int64, commands int, batchSizes []int) ([]E11Row, error) {
	root, err := os.MkdirTemp("", "mcpaxos-e11-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	row, err := RunE11Sequential(filepath.Join(root, "seq"), seed, commands)
	if err != nil {
		return nil, err
	}
	out := []E11Row{row}
	for _, bs := range batchSizes {
		row, err := RunE11Batched(filepath.Join(root, fmt.Sprintf("batch%d", bs)), seed, commands, bs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
