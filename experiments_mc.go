package mcpaxos

import (
	"fmt"

	"mcpaxos/internal/ballot"
	"mcpaxos/internal/batch"
	"mcpaxos/internal/classic"
	"mcpaxos/internal/cstruct"
	"mcpaxos/internal/smr"
)

// This file implements E13, the multicoordinated-shards experiment: the
// paper's headline idea — a classic round served by several coordinators,
// acceptors accepting on a quorum of matching 2a forwards (Section 4.1) —
// composed with the scale machinery of E10–E12 (batching, pipelining, the
// sharded instance space). Each of the 2 shards is driven by a coordinator
// group of c members over the same batched, sequence-numbered stream; the
// sweep measures drain time and msgs/cmd for c ∈ {1, 3}, with and without
// killing one coordinator per shard mid-stream. The claim: under c = 3 the
// crash masks completely — the stream drains in the same rounds, zero round
// changes, identical merged order — where c = 1 pays a round change and a
// re-proposal stall, and the redundancy price is only the extra 2a/propose
// fan-out (~c× on those message types), not latency.

// E13Shards is the fixed shard count of the E13 sweep.
const E13Shards = 2

// E13Row is one sweep point of the multicoordinated-shards experiment.
type E13Row struct {
	// Mode names the configuration: c=<n> with an optional +crash.
	Mode string
	// CoordsPerShard is the coordinator group size per shard.
	CoordsPerShard int
	// Crash reports whether one group member per shard was killed
	// mid-stream.
	Crash bool
	// Commands is the number of client commands applied by the replica.
	Commands int
	// Instances is the number of consensus instances delivered in order.
	Instances int
	// Msgs counts every protocol message sent during the drain.
	Msgs uint64
	// SimSteps is the simulated time from first submission to quiescence
	// (communication steps under unit latency).
	SimSteps int64
	// MsgsPerCmd is Msgs per command.
	MsgsPerCmd float64
	// RoundChanges counts the shards whose serving round advanced past the
	// pre-drain baseline (observed at the acceptors) plus every
	// re-establishment a coordinator paid on top of its first: the
	// crash-masking claim is 0 under c = 3.
	RoundChanges int
	// Promotions counts collision-triggered acceptor promotions
	// (Section 4.2); conflict-free runs report 0.
	Promotions int
	// Order is the merged total order of applied command IDs, for
	// order-equality checks across sweep points.
	Order []uint64
}

// RunE13One drains `commands` through 2 shards at the given group size,
// optionally killing one group member per shard mid-stream, and reports the
// drain accounting plus the merged delivery order.
func RunE13One(seed int64, commands, coordsPerShard int, crash bool, batchSize, window int) E13Row {
	shards := E13Shards
	nCoords := shards * coordsPerShard
	if coordsPerShard == 1 {
		// Single-coordinated shards need a standby per shard for the
		// post-crash failover that multicoordination makes unnecessary.
		nCoords = shards * 2
	}
	rep := smr.NewReplica(smr.NewKVStore())
	var order []uint64
	m := smr.NewMerger(func(_ uint64, cmd cstruct.Cmd) {
		if sub, ok := batch.Unpack(cmd); ok {
			for _, c := range sub {
				order = append(order, c.ID)
			}
		} else {
			order = append(order, cmd.ID)
		}
		rep.ApplyOnce(cmd)
	})
	cl := classic.NewCluster(classic.ClusterOpts{
		NCoords: nCoords, NAcceptors: 3, F: 1, Seed: seed,
		Shards: shards, CoordsPerShard: coordsPerShard, MaxInflight: window,
		OnLearn: func(inst uint64, cmd cstruct.Cmd) { m.Add(inst, cmd) },
	})
	m.OnRelease = func(upTo uint64) { cl.Learners[0].Release(upTo) }
	cl.LeadAll()

	base := make([]ballot.Ballot, shards)
	for k := range base {
		base[k] = cl.ShardRound(k)
	}
	cl.Sim.Metrics().Reset()
	start := cl.Sim.Now()
	router := batch.NewRouter(shards, batchSize, 0, cl.Sim.Now, func(shard int, seq uint64, c cstruct.Cmd) {
		cl.Prop.ProposeSeq(shard, seq, c)
	})
	for i := 0; i < commands; i++ {
		router.Route(e10Cmd(i))
	}
	router.FlushAll()

	if crash {
		// Two communication steps in: proposals delivered, the first 2a
		// wave in flight — then one group member per shard dies (the
		// primaries, the worst case for c = 1).
		cl.Sim.RunUntil(cl.Sim.Now() + 2)
		for k := 0; k < shards; k++ {
			cl.Sim.Crash(cl.Cfg.Coords[k])
		}
		if coordsPerShard == 1 {
			// No group to mask the crash: each shard's standby must take
			// over with a fresh round and re-propose the stalled stream.
			for k := 0; k < shards; k++ {
				cl.Coords[shards+k].BecomeLeader()
			}
		}
	}
	cl.Sim.Run()

	mode := fmt.Sprintf("c=%d", coordsPerShard)
	if crash {
		mode += "+crash"
	}
	roundChanges := cl.RoundChanges()
	for k := 0; k < shards; k++ {
		if base[k].Less(cl.ShardRound(k)) {
			roundChanges++
		}
	}
	row := E13Row{
		Mode:           mode,
		CoordsPerShard: coordsPerShard,
		Crash:          crash,
		Commands:       rep.Applied(),
		Instances:      int(m.Delivered()),
		Msgs:           cl.Sim.Metrics().TotalSent(),
		SimSteps:       cl.Sim.Now() - start,
		RoundChanges:   roundChanges,
		Order:          order,
	}
	for _, a := range cl.Accs {
		row.Promotions += a.Promotions()
	}
	if row.Commands != commands || m.Buffered() != 0 {
		// Refuse to report a broken run as a masking or throughput number.
		row.Mode += "(INCOMPLETE)"
	}
	if row.Commands > 0 {
		row.MsgsPerCmd = float64(row.Msgs) / float64(row.Commands)
	}
	return row
}

// RunE13 sweeps coordinator group size × crash over the batched, sharded
// command path: {c=1, c=3} × {no crash, one coordinator killed per shard}.
func RunE13(seed int64, commands, batchSize, window int) []E13Row {
	rows := make([]E13Row, 0, 4)
	for _, c := range []int{1, 3} {
		for _, crash := range []bool{false, true} {
			rows = append(rows, RunE13One(seed, commands, c, crash, batchSize, window))
		}
	}
	return rows
}
