package mcpaxos

import "testing"

func TestAblationCoordQuorum(t *testing.T) {
	rows := RunAblationCoordQuorum(1, []int{1, 3, 5})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Steps != 3 {
			t.Errorf("nc=%d: steps = %d, want 3 (latency independent of nc)", r.NCoords, r.Steps)
		}
	}
	if rows[0].SurvivedOneCrash {
		t.Errorf("nc=1 cannot survive its only coordinator crashing")
	}
	if !rows[1].SurvivedOneCrash || !rows[2].SurvivedOneCrash {
		t.Errorf("nc≥3 must survive one crash: %+v", rows[1:])
	}
	if rows[1].ToleratedCrashes != 1 || rows[2].ToleratedCrashes != 2 {
		t.Errorf("tolerated crashes wrong: %+v", rows)
	}
}

func TestAblationRndPersistence(t *testing.T) {
	rows := RunAblationRndPersistence(1, 10)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	volatile, persist := rows[0], rows[1]
	if volatile.PersistRnd || !persist.PersistRnd {
		t.Fatalf("row order unexpected: %+v", rows)
	}
	// Paper claim (Section 4.4): keeping rnd volatile saves exactly the
	// per-round-change write — accepts are persisted either way.
	delta := persist.WritesPerAcceptor - volatile.WritesPerAcceptor
	lo, hi := 0.9*float64(persist.RoundChanges), 1.1*float64(persist.RoundChanges)+1
	if delta < lo || delta > hi {
		t.Errorf("persist-rnd extra writes %.2f not ≈ one per round change (%d): %.2f vs %.2f",
			delta, persist.RoundChanges, persist.WritesPerAcceptor, volatile.WritesPerAcceptor)
	}
}
