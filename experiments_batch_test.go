package mcpaxos

import "testing"

// TestE10BatchingAmortizesProtocolWork pins the shape of the throughput
// experiment: batching must cut protocol messages and acceptor disk writes
// per command by at least the acceptance factor, and pipelining must
// collapse the sequential stream's communication steps.
func TestE10BatchingAmortizesProtocolWork(t *testing.T) {
	const commands = 256
	seq := RunE10Sequential(1, commands)
	if seq.Commands != commands {
		t.Fatalf("sequential run incomplete: %+v", seq)
	}

	b32 := RunE10Batched(1, commands, 32)
	if b32.Commands != commands {
		t.Fatalf("batched run incomplete: %+v", b32)
	}
	if b32.Instances != commands/32 {
		t.Errorf("batch=32 used %d instances, want %d", b32.Instances, commands/32)
	}
	// Acceptance floor is 2×; the measured amortization is ~32×.
	if b32.MsgsPerCmd*2 > seq.MsgsPerCmd {
		t.Errorf("batch=32 msgs/cmd %.2f not ≥2× better than sequential %.2f",
			b32.MsgsPerCmd, seq.MsgsPerCmd)
	}
	if b32.WritesPerCmd*2 > seq.WritesPerCmd {
		t.Errorf("batch=32 writes/cmd %.3f not ≥2× better than sequential %.3f",
			b32.WritesPerCmd, seq.WritesPerCmd)
	}

	p8 := RunE10Pipelined(1, commands, 8)
	if p8.Commands != commands {
		t.Fatalf("pipelined run incomplete: %+v", p8)
	}
	// Pipelining does not change per-command protocol work...
	if p8.Msgs != seq.Msgs {
		t.Errorf("pipeline msgs %d != sequential %d", p8.Msgs, seq.Msgs)
	}
	// ...but it overlaps the instances' round trips.
	if p8.SimSteps*2 > seq.SimSteps {
		t.Errorf("pipeline=8 steps %d not ≥2× better than sequential %d",
			p8.SimSteps, seq.SimSteps)
	}
}

// TestE10BatchedRunsAreDeterministic: the deterministic clock inside the
// Batcher and simulator must make repeated runs identical.
func TestE10BatchedRunsAreDeterministic(t *testing.T) {
	a := RunE10Batched(7, 128, 16)
	b := RunE10Batched(7, 128, 16)
	if a != b {
		t.Errorf("batched runs diverged:\n  %+v\n  %+v", a, b)
	}
}
