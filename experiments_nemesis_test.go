package mcpaxos

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestE14SingleSeed pins one full nemesis run: mixed workload, randomized
// fault schedule, zero invariant or linearizability failures.
func TestE14SingleSeed(t *testing.T) {
	row := RunE14One(1, 4, 24)
	if !row.Ok {
		t.Fatalf("seed 1 failed: %s", row.Failure)
	}
	if row.Ops != 4*24 {
		t.Fatalf("ops = %d, want %d", row.Ops, 4*24)
	}
	if row.FaultEvents == 0 {
		t.Fatal("schedule injected no faults")
	}
	if row.Net.Dropped == 0 && row.Net.Duplicated == 0 && row.Net.Delayed == 0 {
		t.Fatalf("the adversary never touched the traffic: %+v", row.Net)
	}
}

// TestE14ManySeeds is the acceptance sweep: ≥50 randomized seeds, each a
// different workload and fault schedule, all clean.
func TestE14ManySeeds(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 8
	}
	rows := RunE14(100, n, 4, 24)
	for _, row := range rows {
		if !row.Ok {
			t.Errorf("seed %d failed: %s", row.Seed, row.Failure)
		}
	}
}

// TestE14SeedCorpus replays every seed in testdata/nemesis_seeds.txt. The
// corpus is the regression ratchet: any seed that ever produces a violation
// gets appended there and replays on every CI run from then on.
func TestE14SeedCorpus(t *testing.T) {
	f, err := os.Open("testdata/nemesis_seeds.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var seeds []int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		seed, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("corpus line %q: %v", sc.Text(), err)
		}
		seeds = append(seeds, seed)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus")
	}
	for _, seed := range seeds {
		if row := RunE14One(seed, 4, 24); !row.Ok {
			t.Errorf("corpus seed %d failed: %s", seed, row.Failure)
		}
	}
}

// TestE14Deterministic pins reproducibility: the same seed yields the same
// run, byte for byte — the property that makes a failing seed a regression
// test instead of an anecdote.
func TestE14Deterministic(t *testing.T) {
	a := RunE14One(7, 4, 24)
	b := RunE14One(7, 4, 24)
	if a != b {
		t.Fatalf("seed 7 not reproducible:\n%+v\n%+v", a, b)
	}
}
