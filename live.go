package mcpaxos

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the live-TCP latency experiment: the batched,
// sharded, multicoordinated stack of E10–E13 assembled by the embedding API
// (Replica/Client over real loopback sockets, wall-clock ticks), measured in
// proposal-to-apply latency percentiles instead of simulated communication
// steps. It is the bench harness behind `paxosbench -exp live`.

// LiveResult is one live-TCP latency run.
type LiveResult struct {
	// Commands is the number of client commands applied and answered.
	Commands int
	// Shards and CoordsPerShard name the deployment shape.
	Shards, CoordsPerShard int
	// BatchMax is the client-side batch size.
	BatchMax int
	// P50, P90, P99 and Max are proposal-to-reply latency percentiles.
	P50, P90, P99, Max time.Duration
	// Elapsed is the wall time from first proposal to last reply.
	Elapsed time.Duration
	// Throughput is Commands per second of Elapsed.
	Throughput float64
	// Retries and DupReplies are the client's retransmission and
	// duplicate-suppression counters; Abandoned counts batches that failed
	// their callers at the request timeout, ReplayProbes the retry rounds
	// that also solicited the learners' reply caches.
	Retries, DupReplies, Abandoned, ReplayProbes uint64
	// RoundChanges sums post-establishment round changes across the
	// coordinators: a healthy run reports 0.
	RoundChanges int
	// WireBytes totals the bytes every endpoint (replica nodes + client)
	// wrote to the wire during the measured run; BytesPerCmd is that per
	// client command — the codec-efficiency headline.
	WireBytes   uint64
	BytesPerCmd float64
	// EncodeNsPerFrame and DecodeNsPerFrame average the codec time per
	// frame across all endpoints.
	EncodeNsPerFrame, DecodeNsPerFrame float64
}

// RunLiveLatency stands up a full deployment on loopback TCP (every node in
// this process, each behind its own socket), drives `commands` KV writes
// through the client's batched, shard-routed path, and reports latency
// percentiles. With coordsPerShard ≥ 2 each shard is served by a
// multicoordinated group; the client load-balances its quorum windows.
func RunLiveLatency(shards, coordsPerShard, nAcceptors, commands, batchMax int) (LiveResult, error) {
	spec := LocalSpec(shards, coordsPerShard, nAcceptors, 2, 1)
	spec.BatchMax = batchMax
	spec.Window = 8
	spec, err := spec.ResolveEphemeral()
	if err != nil {
		return LiveResult{}, err
	}
	rep, err := OpenReplica(spec)
	if err != nil {
		return LiveResult{}, err
	}
	defer rep.Close()
	cli, err := DialClient(spec, spec.Clients[0].ID)
	if err != nil {
		return LiveResult{}, err
	}
	defer cli.Close()

	// One unmeasured warmup write lets every shard's round establish and the
	// sockets dial, so the percentiles report steady state rather than
	// bring-up.
	if err := cli.Wait([]*Call{cli.Set("warmup", "x")}, 30*time.Second); err != nil {
		return LiveResult{}, err
	}
	netBefore := rep.NetStats().Plus(cli.NetStats())

	start := time.Now()
	calls := make([]*Call, 0, commands)
	for i := 0; i < commands; i++ {
		calls = append(calls, cli.Set(fmt.Sprintf("key-%d", i%16), fmt.Sprintf("v%d", i)))
	}
	if err := cli.Wait(calls, 30*time.Second); err != nil {
		return LiveResult{}, err
	}
	elapsed := time.Since(start)
	net := rep.NetStats().Plus(cli.NetStats())
	wireBytes := net.BytesOut - netBefore.BytesOut
	framesOut := net.FramesOut - netBefore.FramesOut
	framesIn := net.FramesIn - netBefore.FramesIn

	lat := make([]time.Duration, 0, len(calls))
	for _, c := range calls {
		lat = append(lat, c.Latency())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	st := cli.Stats()
	res := LiveResult{
		Commands: commands, Shards: spec.Shards, CoordsPerShard: spec.CoordsPerShard,
		BatchMax:   batchMax,
		P50:        percentile(lat, 50),
		P90:        percentile(lat, 90),
		P99:        percentile(lat, 99),
		Max:        lat[len(lat)-1],
		Elapsed:    elapsed,
		Throughput: float64(commands) / elapsed.Seconds(),
		Retries:    st.Retries, DupReplies: st.DupReplies,
		Abandoned:    st.Abandoned,
		ReplayProbes: st.ReplayProbes,
		RoundChanges: rep.RoundChanges(),
		WireBytes:    wireBytes,
		BytesPerCmd:  float64(wireBytes) / float64(commands),
	}
	if framesOut > 0 {
		res.EncodeNsPerFrame = float64(net.EncodeNanos-netBefore.EncodeNanos) / float64(framesOut)
	}
	if framesIn > 0 {
		res.DecodeNsPerFrame = float64(net.DecodeNanos-netBefore.DecodeNanos) / float64(framesIn)
	}
	return res, nil
}

// percentile returns the p-th percentile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
