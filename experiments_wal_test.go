package mcpaxos

import "testing"

// TestE11GroupCommitAmortizesFsyncs checks the tentpole claim: with the
// acceptors on a real on-disk WAL, the unbatched stream costs one physical
// fsync per command per acceptor (the paper's one-write-per-accept floor),
// and batch=32 drives it below one — to 1/32 — because each batch is one
// group-commit flush.
func TestE11GroupCommitAmortizesFsyncs(t *testing.T) {
	const commands = 64
	rows, err := RunE11GroupCommit(1, commands, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	byMode := make(map[string]E11Row, len(rows))
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Commands != commands {
			t.Fatalf("mode %s incomplete: %+v", r.Mode, r)
		}
	}

	seq, ok := byMode["sequential"]
	if !ok {
		t.Fatal("no sequential row")
	}
	if seq.FsyncsPerCmdPerAcc != 1 {
		t.Errorf("sequential fsyncs/cmd/acceptor = %.3f, want exactly 1", seq.FsyncsPerCmdPerAcc)
	}
	if seq.Writes != seq.Fsyncs {
		t.Errorf("sequential run coalesced: %d writes vs %d fsyncs", seq.Writes, seq.Fsyncs)
	}

	b32, ok := byMode["batch=32"]
	if !ok {
		t.Fatal("no batch=32 row")
	}
	if b32.FsyncsPerCmdPerAcc >= 1 {
		t.Errorf("batch=32 fsyncs/cmd/acceptor = %.3f, want < 1", b32.FsyncsPerCmdPerAcc)
	}
	// 64 commands in two batches of 32: one fsync per batch per acceptor.
	want := 1.0 / 32.0
	if b32.FsyncsPerCmdPerAcc > want*1.01 {
		t.Errorf("batch=32 fsyncs/cmd/acceptor = %.4f, want ≈ %.4f", b32.FsyncsPerCmdPerAcc, want)
	}

	b8 := byMode["batch=8"]
	if !(b32.FsyncsPerCmdPerAcc < b8.FsyncsPerCmdPerAcc && b8.FsyncsPerCmdPerAcc < seq.FsyncsPerCmdPerAcc) {
		t.Errorf("fsync cost not monotone in batch size: seq=%.3f b8=%.3f b32=%.3f",
			seq.FsyncsPerCmdPerAcc, b8.FsyncsPerCmdPerAcc, b32.FsyncsPerCmdPerAcc)
	}
}
